"""Golden-plan snapshot tests.

The expected join orders, costs, and frontiers below were computed once and
committed.  They pin the optimizer's *output* — not its internals — so a
hot-path refactor (a new enumeration backend, a pruning rewrite) cannot
silently change which plan is chosen or what it costs.  If one of these
fails after an intentional cost-model change, regenerate the literals and
say so in the commit; if it fails after a "pure refactor", the refactor is
not pure.

Every snapshot is asserted for *both* enumeration backends, and best-plan
selection goes through the documented deterministic tie rule
(:func:`repro.plans.plan.plan_tie_key`), so the snapshots are
backend-independent by construction.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    Backend,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.serial import best_plan, optimize_serial
from repro.core.worker import PartitionResult, WorkerStats
from repro.plans.plan import plan_signature, plan_tie_key
from repro.query.generator import (
    SteinbrunnGenerator,
    make_chain_query,
    make_clique_query,
    make_cycle_query,
    make_star_query,
)
from repro.query.query import JoinGraphKind

BACKENDS = [Backend.LEGACY, Backend.FASTDP]

#: Snapshots for the capabilities vecdp declares (plain and multi-objective
#: over both plan spaces) additionally run on the array core when numpy is
#: present; the orders/parametric snapshots keep the two scalar backends.
PLAIN_BACKENDS = list(BACKENDS)
if importlib.util.find_spec("numpy") is not None:
    PLAIN_BACKENDS.append(Backend.VECDP)

#: (query factory, seed, expected left-deep join order, expected cost).
LEFTDEEP_GOLDEN = [
    ("chain6-seed11", make_chain_query, 6, 11, (1, 0, 2, 3, 4, 5), 2105652550075529.8),
    ("star6-seed7", make_star_query, 6, 7, (1, 0, 4, 5, 3, 2), 1.0672956989504826e16),
    ("clique5-seed3", make_clique_query, 5, 3, (3, 0, 4, 2, 1), 998907.0237956364),
    ("cycle6-seed5", make_cycle_query, 6, 5, (3, 2, 4, 5, 0, 1), 453512101314.11084),
]

#: star-5 seed 7, time+buffer objectives: the exact Pareto frontier.
MULTI_GOLDEN_FRONTIER = [
    (4162697778021.978, 76241.0),
    (4168515360514.373, 55652.0),
    (165741642426792.78, 42455.0),
    (168895808565079.1, 28150.0),
    (2077286470233918.8, 6115.0),
    (1.930719320326567e17, 100.0),
]

#: chain-5 seed 11, bushy space: structural signature of the best plan.
BUSHY_GOLDEN_COST = 1996796630.0239124
BUSHY_GOLDEN_SIGNATURE = (
    1,
    "hash",
    (
        1,
        "hash",
        (0, 2, "full_scan"),
        (1, "hash", (0, 1, "full_scan"), (0, 0, "full_scan")),
    ),
    (1, "hash", (0, 3, "full_scan"), (0, 4, "full_scan")),
)


@pytest.mark.parametrize("backend", PLAIN_BACKENDS, ids=lambda b: b.value)
@pytest.mark.parametrize(
    "label,factory,n_tables,seed,expected_order,expected_cost",
    LEFTDEEP_GOLDEN,
    ids=[case[0] for case in LEFTDEEP_GOLDEN],
)
def test_leftdeep_golden_plan(
    label, factory, n_tables, seed, expected_order, expected_cost, backend
):
    query = factory(n_tables, seed=seed)
    result = optimize_serial(query, OptimizerSettings(backend=backend))
    plan = best_plan(result)
    assert plan.join_order() == expected_order
    assert plan.cost[0] == pytest.approx(expected_cost, rel=1e-12)


@pytest.mark.parametrize("backend", PLAIN_BACKENDS, ids=lambda b: b.value)
def test_multi_objective_golden_frontier(backend):
    query = make_star_query(5, seed=7)
    settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, backend=backend)
    result = optimize_serial(query, settings)
    frontier = sorted(plan.cost for plan in result.plans)
    assert len(frontier) == len(MULTI_GOLDEN_FRONTIER)
    for got, expected in zip(frontier, MULTI_GOLDEN_FRONTIER):
        assert got == pytest.approx(expected, rel=1e-12)
    best = best_plan(result)
    assert best.cost == pytest.approx(MULTI_GOLDEN_FRONTIER[0], rel=1e-12)
    assert best.join_order() == (0, 3, 1, 4, 2)


@pytest.mark.parametrize("backend", PLAIN_BACKENDS, ids=lambda b: b.value)
def test_bushy_golden_plan(backend):
    query = make_chain_query(5, seed=11)
    settings = OptimizerSettings(plan_space=PlanSpace.BUSHY, backend=backend)
    plan = best_plan(optimize_serial(query, settings))
    assert plan.cost[0] == pytest.approx(BUSHY_GOLDEN_COST, rel=1e-12)
    assert plan_signature(plan) == BUSHY_GOLDEN_SIGNATURE


#: chain-6 seed 13 over clustered tables, interesting orders on: the full
#: per-order frontier at the final table set — (first-metric cost, output
#: order rendered as str or None) in stored order — and the best plan.
ORDERS_GOLDEN_FRONTIER = [
    (10778022908424.549, None),
    (394846880051123.06, "T1.c0"),
    (2.3556122884843844e16, "T0.c0"),
    (1250064738706076.2, "T1.c1"),
    (1.4121503692576332e16, "T2.c1"),
    (9.383302999321702e17, "T3.c1"),
    (1680172263749727.0, "T4.c1"),
]
ORDERS_GOLDEN_BEST_ORDER = (5, 4, 3, 2, 1, 0)
ORDERS_GOLDEN_BEST_COST = 10778022908424.549


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.value)
def test_interesting_orders_golden_frontier(backend):
    """Pin the multi-(mask, order) frontier, not just the best plan."""
    query = SteinbrunnGenerator(seed=13, clustered_tables=True).query(
        6, JoinGraphKind.CHAIN
    )
    settings = OptimizerSettings(consider_orders=True, backend=backend)
    result = optimize_serial(query, settings)
    got = [
        (plan.cost[0], str(plan.order) if plan.order else None)
        for plan in result.plans
    ]
    assert len(got) == len(ORDERS_GOLDEN_FRONTIER)
    for (got_cost, got_order), (want_cost, want_order) in zip(
        got, ORDERS_GOLDEN_FRONTIER
    ):
        assert got_cost == pytest.approx(want_cost, rel=1e-12)
        assert got_order == want_order
    best = best_plan(result)
    assert best.join_order() == ORDERS_GOLDEN_BEST_ORDER
    assert best.cost[0] == pytest.approx(ORDERS_GOLDEN_BEST_COST, rel=1e-12)


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.value)
def test_interesting_orders_tie_rule_ignores_frontier_order(backend):
    """plan_tie_key decides among per-order plans, not generation order."""
    query = SteinbrunnGenerator(seed=13, clustered_tables=True).query(
        6, JoinGraphKind.CHAIN
    )
    settings = OptimizerSettings(consider_orders=True, backend=backend)
    result = optimize_serial(query, settings)
    stats = WorkerStats(partition_id=0, n_partitions=1, n_constraints=0)
    reversed_result = PartitionResult(
        plans=list(reversed(result.plans)), stats=stats
    )
    assert plan_signature(best_plan(result)) == plan_signature(
        best_plan(reversed_result)
    )


#: clique-7 seed 16, parametric (time, io): the lower envelope — two lines
#: crossing once inside (0, 1) — with the θ ranges each plan wins.
PARAMETRIC_GOLDEN_ENVELOPE = [
    (4935954.915994024, 3333047.9299950195),
    (4943874.5140040405, 3328847.095003367),
]
PARAMETRIC_GOLDEN_SWITCH = 0.6534088352227998
PARAMETRIC_GOLDEN_ORDERS = {
    (4935954.915994024, 3333047.9299950195): (1, 0, 2, 4, 5, 6, 3),
    (4943874.5140040405, 3328847.095003367): (1, 0, 2, 3, 4, 5, 6),
}


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.value)
def test_parametric_golden_envelope(backend):
    from repro.cost.parametric import switching_points

    query = SteinbrunnGenerator(seed=16).query(7, JoinGraphKind.CLIQUE)
    settings = OptimizerSettings(
        objectives=PARAMETRIC_OBJECTIVES, parametric=True, backend=backend
    )
    result = optimize_serial(query, settings)
    envelope = sorted(plan.cost for plan in result.plans)
    assert len(envelope) == len(PARAMETRIC_GOLDEN_ENVELOPE)
    for got, want in zip(envelope, sorted(PARAMETRIC_GOLDEN_ENVELOPE)):
        assert got == pytest.approx(want, rel=1e-12)
    points = switching_points([plan.cost for plan in result.plans])
    assert len(points) == 1
    assert points[0] == pytest.approx(PARAMETRIC_GOLDEN_SWITCH, rel=1e-9)
    for plan in result.plans:
        assert plan.join_order() == PARAMETRIC_GOLDEN_ORDERS[plan.cost]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.value)
def test_parametric_golden_theta_selection(backend):
    """best_plan_for picks each envelope line on its side of the switch."""
    from repro.algorithms.pqo import optimize_parametric

    query = SteinbrunnGenerator(seed=16).query(7, JoinGraphKind.CLIQUE)
    result = optimize_parametric(query, backend=backend)
    time_heavy = result.best_plan_for(0.0)
    io_heavy = result.best_plan_for(1.0)
    assert time_heavy.cost == pytest.approx(PARAMETRIC_GOLDEN_ENVELOPE[0])
    assert io_heavy.cost == pytest.approx(PARAMETRIC_GOLDEN_ENVELOPE[1])
    assert result.switching_thetas() == [
        pytest.approx(PARAMETRIC_GOLDEN_SWITCH, rel=1e-9)
    ]


class TestDeterministicTieBreaking:
    """The documented tie rule: cost, then full cost vector, then structure.

    Generation order must never decide the best plan — the same plan set in
    any order selects the same plan, on any backend.
    """

    @staticmethod
    def _result(plans):
        stats = WorkerStats(partition_id=0, n_partitions=1, n_constraints=0)
        return PartitionResult(plans=list(plans), stats=stats)

    def _equal_cost_plans(self):
        """All optimal-cost plans of a symmetric 2-table query."""
        from repro.core.exhaustive import iter_leftdeep_plans
        from repro.cost.costmodel import CostModel
        from tests.conftest import make_manual_query

        query = make_manual_query([1000, 1000], [(0, 1, 0.01)])
        cost_model = CostModel(query, OptimizerSettings())
        plans = list(iter_leftdeep_plans(query, cost_model))
        cheapest = min(plan.cost[0] for plan in plans)
        ties = [plan for plan in plans if plan.cost[0] == cheapest]
        assert len(ties) >= 2, "symmetric query must produce tied plans"
        return ties

    def test_best_plan_ignores_list_order(self):
        ties = self._equal_cost_plans()
        forward = best_plan(self._result(ties))
        backward = best_plan(self._result(reversed(ties)))
        assert plan_signature(forward) == plan_signature(backward)

    def test_best_plan_picks_smallest_tie_key(self):
        ties = self._equal_cost_plans()
        chosen = best_plan(self._result(ties))
        assert plan_tie_key(chosen) == min(plan_tie_key(plan) for plan in ties)

    def test_master_and_service_results_agree_with_serial_rule(self):
        from repro.core.master import MasterResult
        from repro.service.service import ServiceResult

        ties = self._equal_cost_plans()
        reference = best_plan(self._result(ties))
        master = MasterResult(
            plans=list(reversed(ties)), n_partitions=1, requested_workers=1
        )
        service = ServiceResult(
            plans=list(reversed(ties)),
            n_partitions=1,
            fingerprint="golden",
            cached=False,
            simulated_time_ms=0.0,
            network_bytes=0,
        )
        assert plan_signature(master.best) == plan_signature(reference)
        assert plan_signature(service.best) == plan_signature(reference)

    def test_signature_distinguishes_structure(self):
        ties = self._equal_cost_plans()
        signatures = {plan_signature(plan) for plan in ties}
        assert len(signatures) == len(ties)
