"""Randomized comparators: iterated improvement and simulated annealing."""

from __future__ import annotations

import pytest

from repro.algorithms.randomized import (
    iterated_improvement,
    order_cost,
    plan_for_order,
    simulated_annealing,
)
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.cost.costmodel import CostModel
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def query():
    return SteinbrunnGenerator(15).query(6)


@pytest.fixture
def model(query):
    return CostModel(query, OptimizerSettings())


class TestPlanForOrder:
    def test_realizes_requested_order(self, query, model):
        plan = plan_for_order([3, 1, 4, 0, 2, 5], model)
        assert plan.join_order() == (3, 1, 4, 0, 2, 5)

    def test_left_deep(self, query, model):
        assert plan_for_order([0, 1, 2, 3, 4, 5], model).is_left_deep()

    def test_empty_order_rejected(self, model):
        with pytest.raises(ValueError):
            plan_for_order([], model)

    def test_order_cost_matches_plan(self, query, model):
        order = [2, 0, 1, 3, 5, 4]
        assert order_cost(order, model) == plan_for_order(order, model).cost[0]

    def test_greedy_operator_choice_optimal_per_order(self, query, model):
        """With additive costs and no order tracking, per-join greedy
        operator choice is globally optimal for a fixed join order — verify
        against DP restricted to that order via exhaustive enumeration."""
        from repro.core.exhaustive import _leftdeep_plans_for_order

        order = [1, 0, 2, 3, 4, 5]
        exhaustive_best = min(
            plan.cost[0] for plan in _leftdeep_plans_for_order(order, model)
        )
        assert order_cost(order, model) == pytest.approx(exhaustive_best)


class TestIteratedImprovement:
    def test_never_below_optimum(self, query):
        optimum = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        heuristic = iterated_improvement(query, seed=1)
        assert heuristic.cost[0] >= optimum * (1 - 1e-9)

    def test_finds_optimum_on_small_query(self):
        query = SteinbrunnGenerator(16).query(4)
        optimum = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        heuristic = iterated_improvement(query, n_restarts=20, seed=3)
        assert heuristic.cost[0] == pytest.approx(optimum)

    def test_deterministic_by_seed(self, query):
        a = iterated_improvement(query, seed=7)
        b = iterated_improvement(query, seed=7)
        assert a.cost == b.cost

    def test_restart_validation(self, query):
        with pytest.raises(ValueError):
            iterated_improvement(query, n_restarts=0)

    def test_more_restarts_no_worse(self, query):
        few = iterated_improvement(query, n_restarts=1, seed=5)
        many = iterated_improvement(query, n_restarts=10, seed=5)
        assert many.cost[0] <= few.cost[0] * (1 + 1e-9)


class TestSimulatedAnnealing:
    def test_never_below_optimum(self, query):
        optimum = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        heuristic = simulated_annealing(query, seed=2)
        assert heuristic.cost[0] >= optimum * (1 - 1e-9)

    def test_finds_optimum_on_small_query(self):
        query = SteinbrunnGenerator(19).query(4)
        optimum = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        heuristic = simulated_annealing(query, seed=4)
        assert heuristic.cost[0] == pytest.approx(optimum)

    def test_deterministic_by_seed(self, query):
        a = simulated_annealing(query, seed=9)
        b = simulated_annealing(query, seed=9)
        assert a.cost == b.cost

    def test_cooling_validation(self, query):
        with pytest.raises(ValueError):
            simulated_annealing(query, cooling=1.5)

    def test_returns_valid_left_deep_plan(self, query):
        plan = simulated_annealing(query, seed=11)
        assert plan.is_left_deep()
        assert plan.mask == query.all_tables_mask


class TestGreedyOperatorOrdering:
    def test_returns_full_plan(self, query):
        from repro.algorithms.randomized import greedy_operator_ordering

        plan = greedy_operator_ordering(query)
        assert plan.mask == query.all_tables_mask

    def test_never_below_bushy_optimum(self, query):
        from repro.algorithms.randomized import greedy_operator_ordering
        from repro.config import PlanSpace

        bushy = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        optimum = best_plan(optimize_serial(query, bushy)).cost[0]
        plan = greedy_operator_ordering(query, bushy)
        assert plan.cost[0] >= optimum * (1 - 1e-9)

    def test_deterministic(self, query):
        from repro.algorithms.randomized import greedy_operator_ordering

        assert (
            greedy_operator_ordering(query).cost
            == greedy_operator_ordering(query).cost
        )

    def test_single_table(self):
        from repro.algorithms.randomized import greedy_operator_ordering
        from tests.conftest import make_manual_query

        plan = greedy_operator_ordering(make_manual_query([5]))
        assert plan.rows == 5.0

    def test_reasonable_quality(self, query):
        """GOO lands within a couple orders of magnitude of the optimum
        (its classic behaviour: good, not guaranteed)."""
        from repro.algorithms.randomized import greedy_operator_ordering
        from repro.config import PlanSpace

        bushy = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        optimum = best_plan(optimize_serial(query, bushy)).cost[0]
        plan = greedy_operator_ordering(query, bushy)
        assert plan.cost[0] <= 100 * optimum
