"""Plan trees, operators, and interesting orders."""

from __future__ import annotations

import pytest

from repro.config import OptimizerSettings
from repro.cost.costmodel import CostModel
from repro.plans.operators import ALL_JOIN_ALGORITHMS, JoinAlgorithm
from repro.plans.orders import SortOrder, order_satisfies
from repro.plans.plan import (
    iter_join_result_masks,
    plan_depth,
    plan_join_count,
)
from tests.conftest import make_manual_query


def build_leftdeep(query, order, settings=None):
    """Cheapest-operator left-deep plan along the given order."""
    model = CostModel(query, settings or OptimizerSettings())
    plan = model.scan_plans(order[0])[0]
    for table_number in order[1:]:
        scan = model.scan_plans(table_number)[0]
        candidate = min(model.join_candidates(plan, scan), key=lambda c: c.cost[0])
        plan = model.build_join(plan, scan, candidate)
    return plan


def build_bushy_pair_of_pairs(query):
    """((T0 x T1) x (T2 x T3)) — the smallest genuinely bushy plan."""
    model = CostModel(query, OptimizerSettings())
    scans = [model.scan_plans(i)[0] for i in range(4)]
    left = model.build_join(
        scans[0], scans[1], model.join_candidates(scans[0], scans[1])[0]
    )
    right = model.build_join(
        scans[2], scans[3], model.join_candidates(scans[2], scans[3])[0]
    )
    top = model.build_join(left, right, model.join_candidates(left, right)[0])
    return top


@pytest.fixture
def query4():
    return make_manual_query([100, 200, 300, 400], [(0, 1, 0.01), (1, 2, 0.01)])


class TestOperators:
    def test_equi_requirement(self):
        assert JoinAlgorithm.HASH.requires_equi_predicate
        assert JoinAlgorithm.SORT_MERGE.requires_equi_predicate
        assert not JoinAlgorithm.BLOCK_NESTED_LOOP.requires_equi_predicate

    def test_sorted_output(self):
        assert JoinAlgorithm.SORT_MERGE.produces_sorted_output
        assert not JoinAlgorithm.HASH.produces_sorted_output

    def test_all_algorithms_listed(self):
        assert len(ALL_JOIN_ALGORITHMS) == 3


class TestOrders:
    def test_none_requirement_always_satisfied(self):
        assert order_satisfies(None, None)
        assert order_satisfies(SortOrder(0, "a"), None)

    def test_exact_match(self):
        assert order_satisfies(SortOrder(0, "a"), SortOrder(0, "a"))

    def test_mismatch(self):
        assert not order_satisfies(SortOrder(0, "a"), SortOrder(0, "b"))
        assert not order_satisfies(None, SortOrder(0, "a"))

    def test_sort_order_is_comparable(self):
        assert SortOrder(0, "a") < SortOrder(1, "a")


class TestPlanShape:
    def test_scan_is_left_deep(self, query4):
        model = CostModel(query4, OptimizerSettings())
        assert model.scan_plans(0)[0].is_left_deep()

    def test_leftdeep_plan(self, query4):
        plan = build_leftdeep(query4, [0, 1, 2, 3])
        assert plan.is_left_deep()
        assert plan.n_tables == 4
        assert plan.mask == 0b1111

    def test_bushy_not_left_deep(self, query4):
        plan = build_bushy_pair_of_pairs(query4)
        assert not plan.is_left_deep()

    def test_join_order_roundtrip(self, query4):
        plan = build_leftdeep(query4, [2, 0, 3, 1])
        assert plan.join_order() == (2, 0, 3, 1)

    def test_join_order_rejects_bushy(self, query4):
        plan = build_bushy_pair_of_pairs(query4)
        with pytest.raises(ValueError):
            plan.join_order()

    def test_join_count(self, query4):
        assert plan_join_count(build_leftdeep(query4, [0, 1, 2, 3])) == 3

    def test_depth_left_deep(self, query4):
        assert plan_depth(build_leftdeep(query4, [0, 1, 2, 3])) == 4

    def test_depth_bushy(self, query4):
        assert plan_depth(build_bushy_pair_of_pairs(query4)) == 3

    def test_join_result_masks_leftdeep(self, query4):
        plan = build_leftdeep(query4, [0, 1, 2, 3])
        assert iter_join_result_masks(plan) == [0b0011, 0b0111, 0b1111]

    def test_join_result_masks_bushy(self, query4):
        plan = build_bushy_pair_of_pairs(query4)
        assert set(iter_join_result_masks(plan)) == {0b0011, 0b1100, 0b1111}


class TestPretty:
    def test_pretty_contains_operators(self, query4):
        text = build_leftdeep(query4, [0, 1, 2, 3]).pretty()
        assert "Scan" in text and "Join" in text

    def test_pretty_uses_names(self, query4):
        names = tuple(t.name for t in query4.tables)
        text = build_leftdeep(query4, [0, 1, 2, 3]).pretty(names)
        assert "T0" in text

    def test_pretty_line_count(self, query4):
        text = build_leftdeep(query4, [0, 1, 2, 3]).pretty()
        assert len(text.splitlines()) == 7  # 4 scans + 3 joins
