"""Admissible join-result generation (paper Algorithm 4) and coverage.

The key structural invariants behind MPQ's correctness:

* per partition, the generated sets are exactly the constraint-respecting
  subsets (product construction == brute-force filter);
* partitions are equally sized (skew-free parallelization);
* every table set of cardinality >= 2 is admissible in at least one
  partition (the ensemble covers the whole plan space);
* the full query set is admissible in every partition.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PlanSpace
from repro.core.constraints import (
    LinearConstraint,
    max_constraints,
    partition_constraints,
)
from repro.core.partitioning import (
    admissible_join_results,
    admissible_results_by_size,
    group_admissible_subsets,
    is_admissible,
)
from repro.util.bitset import popcount


def brute_force_admissible(n_tables, constraints):
    """All sets (any size) surviving the constraint filter, singletons ``{y}``
    of a linear constraint excluded as in ConstrainedPowerSet."""
    admissible = []
    for mask in range(1 << n_tables):
        excluded = False
        for constraint in constraints:
            if isinstance(constraint, LinearConstraint):
                after_bit = 1 << constraint.after
                before_bit = 1 << constraint.before
                if mask & after_bit and not mask & before_bit:
                    excluded = True
            else:
                yz = (1 << constraint.y) | (1 << constraint.z)
                if mask & yz == yz and not mask & (1 << constraint.x):
                    excluded = True
        if not excluded:
            admissible.append(mask)
    return sorted(admissible)


class TestGroupSubsets:
    def test_unconstrained_pair(self):
        subsets = group_admissible_subsets((0, 1), None)
        assert sorted(subsets) == [0b00, 0b01, 0b10, 0b11]

    def test_constrained_pair_drops_after_singleton(self):
        subsets = group_admissible_subsets((0, 1), LinearConstraint(0, 1))
        assert sorted(subsets) == [0b00, 0b01, 0b11]

    def test_constrained_pair_flipped(self):
        subsets = group_admissible_subsets((0, 1), LinearConstraint(1, 0))
        assert sorted(subsets) == [0b00, 0b10, 0b11]


class TestAdmissibleResults:
    @pytest.mark.parametrize("n,space", [(4, PlanSpace.LINEAR), (6, PlanSpace.LINEAR),
                                         (6, PlanSpace.BUSHY), (7, PlanSpace.BUSHY)])
    def test_no_constraints_full_power_set(self, n, space):
        results = admissible_join_results(n, (), space)
        assert sorted(results) == list(range(1 << n))

    @pytest.mark.parametrize("space", [PlanSpace.LINEAR, PlanSpace.BUSHY])
    @pytest.mark.parametrize("n", [6, 7, 8])
    def test_matches_brute_force(self, n, space):
        limit = max_constraints(n, space)
        for n_partitions in (2, 4, 1 << limit):
            for partition_id in range(min(n_partitions, 8)):
                constraints = partition_constraints(n, partition_id, n_partitions, space)
                generated = sorted(admissible_join_results(n, constraints, space))
                assert generated == brute_force_admissible(n, constraints)

    def test_full_query_always_admissible(self):
        n = 8
        for partition_id in range(16):
            constraints = partition_constraints(n, partition_id, 16, PlanSpace.LINEAR)
            results = admissible_join_results(n, constraints, PlanSpace.LINEAR)
            assert (1 << n) - 1 in results

    @pytest.mark.parametrize(
        "n,space,m",
        [
            (6, PlanSpace.LINEAR, 8),
            (8, PlanSpace.LINEAR, 16),
            (6, PlanSpace.BUSHY, 4),
            (9, PlanSpace.BUSHY, 8),
        ],
    )
    def test_partitions_equal_size(self, n, space, m):
        sizes = set()
        for partition_id in range(m):
            constraints = partition_constraints(n, partition_id, m, space)
            sizes.add(len(admissible_join_results(n, constraints, space)))
        assert len(sizes) == 1

    @pytest.mark.parametrize(
        "n,space,m",
        [
            (6, PlanSpace.LINEAR, 8),
            (7, PlanSpace.LINEAR, 8),
            (6, PlanSpace.BUSHY, 4),
            (9, PlanSpace.BUSHY, 8),
        ],
    )
    def test_every_set_covered_by_some_partition(self, n, space, m):
        covered = set()
        for partition_id in range(m):
            constraints = partition_constraints(n, partition_id, m, space)
            covered.update(admissible_join_results(n, constraints, space))
        expected = {mask for mask in range(1 << n) if popcount(mask) != 1}
        assert expected <= covered

    def test_each_linear_partition_smaller(self):
        n = 8
        full = len(admissible_join_results(n, (), PlanSpace.LINEAR))
        constraints = partition_constraints(n, 0, 16, PlanSpace.LINEAR)
        part = len(admissible_join_results(n, constraints, PlanSpace.LINEAR))
        assert part == full * (3, 4)[0] ** 4 // 4**4


class TestBySize:
    def test_sizes_partition_results(self):
        constraints = partition_constraints(6, 1, 4, PlanSpace.LINEAR)
        by_size = admissible_results_by_size(6, constraints, PlanSpace.LINEAR)
        flat = [mask for masks in by_size.values() for mask in masks]
        assert all(popcount(mask) >= 2 for mask in flat)
        for size, masks in by_size.items():
            assert all(popcount(mask) == size for mask in masks)

    def test_no_small_sets(self):
        by_size = admissible_results_by_size(5, (), PlanSpace.LINEAR)
        assert 0 not in by_size
        assert 1 not in by_size


class TestIsAdmissible:
    def test_agrees_with_generator_for_size_2_plus(self):
        n = 7
        constraints = partition_constraints(n, 2, 4, PlanSpace.LINEAR)
        generated = set(admissible_join_results(n, constraints, PlanSpace.LINEAR))
        for mask in range(1 << n):
            if popcount(mask) >= 2:
                assert is_admissible(mask, constraints) == (mask in generated)

    def test_singletons_always_admissible(self):
        constraints = partition_constraints(6, 0, 4, PlanSpace.LINEAR)
        for i in range(6):
            assert is_admissible(1 << i, constraints)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=9),
    space=st.sampled_from([PlanSpace.LINEAR, PlanSpace.BUSHY]),
    data=st.data(),
)
def test_partition_pair_complementary_coverage(n, space, data):
    """Any two complementary partition IDs cover all sets their constraint
    distinguishes: flipping one bit re-admits what the other excluded."""
    limit = max_constraints(n, space)
    n_partitions = 1 << limit
    partition_id = data.draw(st.integers(min_value=0, max_value=n_partitions - 1))
    bit_index = data.draw(st.integers(min_value=0, max_value=limit - 1))
    sibling = partition_id ^ (1 << bit_index)
    constraints_a = partition_constraints(n, partition_id, n_partitions, space)
    constraints_b = partition_constraints(n, sibling, n_partitions, space)
    admissible_a = set(admissible_join_results(n, constraints_a, space))
    admissible_b = set(admissible_join_results(n, constraints_b, space))
    # The union equals the admissible sets of the shared constraints only
    # (i.e. with the flipped bit's constraint removed entirely).
    shared = tuple(
        c for i, c in enumerate(constraints_a) if i != bit_index
    )
    admissible_shared = set(admissible_join_results(n, shared, space))
    assert admissible_a | admissible_b == admissible_shared
