"""Multi-objective optimization: exact frontiers and the α guarantee."""

from __future__ import annotations

import pytest

from repro.algorithms.moq import (
    approximation_ratio,
    frontier_summary,
    optimize_multi_objective,
)
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.core.exhaustive import all_bushy_cost_vectors, all_leftdeep_cost_vectors
from repro.core.master import optimize_parallel
from repro.core.serial import optimize_serial
from repro.cost.pareto import dominates, pareto_filter
from repro.query.generator import SteinbrunnGenerator

SEEDS = [1, 2, 3, 4]


def exact_settings(plan_space=PlanSpace.LINEAR):
    return OptimizerSettings(
        plan_space=plan_space, objectives=MULTI_OBJECTIVE, alpha=1.0
    )


class TestExactFrontier:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_exhaustive_linear(self, seed):
        query = SteinbrunnGenerator(seed).query(5)
        settings = exact_settings()
        reference = set(pareto_filter(all_leftdeep_cost_vectors(query, settings)))
        result = optimize_serial(query, settings)
        produced = {plan.cost for plan in result.plans}
        assert produced == reference

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_matches_exhaustive_bushy(self, seed):
        query = SteinbrunnGenerator(seed).query(4)
        settings = exact_settings(PlanSpace.BUSHY)
        reference = set(pareto_filter(all_bushy_cost_vectors(query, settings)))
        result = optimize_serial(query, settings)
        produced = {plan.cost for plan in result.plans}
        assert produced == reference

    def test_frontier_is_antichain(self):
        query = SteinbrunnGenerator(5).query(6)
        result = optimize_serial(query, exact_settings())
        for a in result.plans:
            for b in result.plans:
                if a is not b:
                    assert not dominates(a.cost, b.cost)

    def test_parallel_frontier_equals_serial(self):
        query = SteinbrunnGenerator(6).query(6)
        settings = exact_settings()
        serial_costs = {plan.cost for plan in optimize_serial(query, settings).plans}
        parallel = optimize_parallel(query, 8, settings)
        assert {plan.cost for plan in parallel.plans} == serial_costs


class TestAlphaGuarantee:
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 5.0, 10.0])
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_serial_within_alpha_of_exact(self, alpha, seed):
        query = SteinbrunnGenerator(seed).query(6)
        exact = optimize_serial(query, exact_settings())
        approx = optimize_serial(
            query,
            OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=alpha),
        )
        ratio = approximation_ratio(approx.plans, exact.plans)
        assert ratio <= alpha * (1 + 1e-9)

    @pytest.mark.parametrize("alpha", [2.0, 10.0])
    def test_parallel_within_alpha_of_exact(self, alpha):
        query = SteinbrunnGenerator(9).query(6)
        exact = optimize_serial(query, exact_settings())
        approx = optimize_parallel(
            query,
            8,
            OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=alpha),
        )
        assert approximation_ratio(approx.plans, exact.plans) <= alpha * (1 + 1e-9)

    def test_larger_alpha_smaller_or_equal_frontier(self):
        query = SteinbrunnGenerator(10).query(7)
        sizes = []
        for alpha in (1.0, 2.0, 10.0):
            result = optimize_serial(
                query, OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=alpha)
            )
            sizes.append(len(result.plans))
        assert sizes[0] >= sizes[1] >= sizes[2] >= 1

    def test_larger_alpha_not_slower(self):
        query = SteinbrunnGenerator(11).query(7)
        tight = optimize_serial(
            query, OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0)
        )
        loose = optimize_serial(
            query, OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=10.0)
        )
        assert loose.stats.plans_considered <= tight.stats.plans_considered


class TestHelpers:
    def test_approximation_ratio_exact(self):
        frontier = [(1.0, 2.0), (2.0, 1.0)]
        assert approximation_ratio(frontier, frontier) == 1.0

    def test_approximation_ratio_factor(self):
        reference = [(1.0, 1.0)]
        candidate = [(2.0, 1.0)]
        assert approximation_ratio(candidate, reference) == pytest.approx(2.0)

    def test_approximation_ratio_picks_best_cover(self):
        reference = [(1.0, 1.0)]
        candidate = [(3.0, 1.0), (1.0, 1.5)]
        assert approximation_ratio(candidate, reference) == pytest.approx(1.5)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio([], [(1.0,)])
        with pytest.raises(ValueError):
            approximation_ratio([(1.0,)], [])

    def test_frontier_summary_sorted(self):
        query = SteinbrunnGenerator(12).query(5)
        result = optimize_serial(query, exact_settings())
        text = frontier_summary(result.plans)
        assert len(text.splitlines()) == len(result.plans)


class TestOptimizeMultiObjective:
    def test_returns_frontier(self):
        query = SteinbrunnGenerator(13).query(6)
        report = optimize_multi_objective(query, 4, alpha=1.0)
        assert len(report.plans) >= 1
        assert all(len(plan.cost) == 2 for plan in report.plans)

    def test_network_grows_with_frontier(self):
        """Multi-objective runs ship whole frontiers back (paper Figure 4)."""
        query = SteinbrunnGenerator(14).query(8)
        single = optimize_parallel(
            query, 4, OptimizerSettings(plan_space=PlanSpace.LINEAR)
        )
        multi = optimize_multi_objective(query, 4, alpha=1.0)
        if len(multi.plans) > 1:
            from repro.cluster.serialization import plans_bytes

            single_result_bytes = sum(
                plans_bytes(r.plans) for r in single.partition_results
            )
            multi_result_bytes = sum(
                plans_bytes(r.plans) for r in multi.result.partition_results
            )
            assert multi_result_bytes > single_result_bytes
