"""Clustered-index scans: interesting orders available at the leaves."""

from __future__ import annotations

import pytest

from repro.config import OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.cost.costmodel import CostModel
from repro.plans.operators import ScanAlgorithm
from repro.plans.orders import SortOrder
from repro.query.generator import SteinbrunnGenerator
from repro.query.predicates import JoinPredicate
from repro.query.query import Query
from repro.query.schema import Column, Table


def clustered_query():
    """Two big tables clustered on their join keys: sort-merge for free."""
    tables = (
        Table(
            "fact",
            50_000,
            (Column("k", 1_000), Column("x", 10)),
            clustered_on="k",
        ),
        Table("dim", 40_000, (Column("k", 1_000),), clustered_on="k"),
        Table("other", 300, (Column("k", 1_000),)),
    )
    predicates = (
        JoinPredicate(0, "k", 1, "k", selectivity=1 / 1_000),
        JoinPredicate(1, "k", 2, "k", selectivity=1 / 1_000),
    )
    return Query(tables=tables, predicates=predicates, name="clustered")


class TestSchema:
    def test_clustered_on_validated(self):
        with pytest.raises(ValueError, match="clustered"):
            Table("R", 10, (Column("a", 5),), clustered_on="nope")

    def test_clustered_on_accepted(self):
        table = Table("R", 10, (Column("a", 5),), clustered_on="a")
        assert table.clustered_on == "a"


class TestScanVariants:
    def test_orders_off_single_scan(self):
        query = clustered_query()
        model = CostModel(query, OptimizerSettings())
        assert len(model.scan_plans(0)) == 1

    def test_orders_on_adds_sorted_scan(self):
        query = clustered_query()
        model = CostModel(query, OptimizerSettings(consider_orders=True))
        plans = model.scan_plans(0)
        assert len(plans) == 2
        algorithms = {plan.algorithm for plan in plans}
        assert algorithms == {
            ScanAlgorithm.FULL_SCAN,
            ScanAlgorithm.CLUSTERED_INDEX_SCAN,
        }
        sorted_scan = next(
            p for p in plans if p.algorithm is ScanAlgorithm.CLUSTERED_INDEX_SCAN
        )
        assert sorted_scan.order == SortOrder(0, "k")

    def test_unclustered_table_has_no_sorted_scan(self):
        query = clustered_query()
        model = CostModel(query, OptimizerSettings(consider_orders=True))
        assert len(model.scan_plans(2)) == 1


class TestSortedScansPayOff:
    def test_clustering_reduces_cost(self):
        """Pre-sorted inputs make sort-merge cheaper than without clustering."""
        query = clustered_query()
        unclustered = Query(
            tables=tuple(
                Table(t.name, t.cardinality, t.columns) for t in query.tables
            ),
            predicates=query.predicates,
        )
        settings = OptimizerSettings(consider_orders=True)
        with_cluster = best_plan(optimize_serial(query, settings)).cost[0]
        without = best_plan(optimize_serial(unclustered, settings)).cost[0]
        assert with_cluster < without

    def test_clustering_never_hurts(self):
        query = clustered_query()
        plain = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        with_orders = best_plan(
            optimize_serial(query, OptimizerSettings(consider_orders=True))
        ).cost[0]
        assert with_orders <= plain

    def test_mpq_matches_serial_with_clustered_scans(self):
        query = clustered_query()
        settings = OptimizerSettings(consider_orders=True)
        serial = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, 2, settings)
        assert parallel.best.cost[0] == pytest.approx(serial)

    def test_bushy_space_with_clustered_scans(self):
        query = clustered_query()
        settings = OptimizerSettings(
            plan_space=PlanSpace.BUSHY, consider_orders=True
        )
        serial = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, 2, settings)
        assert parallel.best.cost[0] == pytest.approx(serial)


class TestGeneratorClustering:
    def test_clustered_generator(self):
        generator = SteinbrunnGenerator(5, clustered_tables=True)
        query = generator.query(5)
        assert all(t.clustered_on == "c0" for t in query.tables)

    def test_default_unclustered(self):
        query = SteinbrunnGenerator(5).query(5)
        assert all(t.clustered_on is None for t in query.tables)

    def test_clustered_workload_optimizes(self):
        generator = SteinbrunnGenerator(6, clustered_tables=True)
        query = generator.query(6)
        settings = OptimizerSettings(consider_orders=True)
        serial = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, 4, settings)
        assert parallel.best.cost[0] == pytest.approx(serial)
