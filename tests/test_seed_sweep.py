"""Medium-scale seed sweep of the central invariant.

Complements the hypothesis tests at small n: 10-table queries, maximal
linear parallelism (32 partitions), several seeds — MPQ never deviates from
serial DP, and the partition containing the optimum is consistent with the
order-to-partition mapping.
"""

from __future__ import annotations

import pytest

from repro.config import OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


@pytest.mark.parametrize("seed", [11, 22, 33, 44, 55])
def test_mpq_32_partitions_matches_serial_10_tables(seed):
    query = SteinbrunnGenerator(seed).query(10)
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    serial = best_plan(optimize_serial(query, settings))
    parallel = optimize_parallel(query, 32, settings)
    assert parallel.n_partitions == 32
    assert parallel.best.cost[0] == pytest.approx(serial.cost[0])
    # The winning parallel plan's order must satisfy exactly the constraints
    # of the partition that produced it.
    order = parallel.best.join_order()
    position = {table: index for index, table in enumerate(order)}
    expected_partition = 0
    for bit_index in range(5):
        if position[2 * bit_index] > position[2 * bit_index + 1]:
            expected_partition |= 1 << bit_index
    producing = [
        result.stats.partition_id
        for result in parallel.partition_results
        if result.plans and result.plans[0].cost[0] == parallel.best.cost[0]
    ]
    assert expected_partition in producing


@pytest.mark.parametrize("kind", [JoinGraphKind.CHAIN, JoinGraphKind.CLIQUE])
def test_mpq_16_partitions_bushy_9_tables(kind):
    query = SteinbrunnGenerator(66).query(9, kind)
    settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
    serial = best_plan(optimize_serial(query, settings))
    parallel = optimize_parallel(query, 8, settings)
    assert parallel.n_partitions == 8
    assert parallel.best.cost[0] == pytest.approx(serial.cost[0])


def test_total_partition_work_matches_counting_exactly():
    """Total split work across partitions equals the closed form exactly,
    and stays below the asymptotic (3/2)^l bound — the per-constraint
    reduction is *better* than 3/4 at small n because constraints also
    block inner-operand choices (the paper's second mechanism)."""
    from repro.core.counting import linear_split_count

    query = SteinbrunnGenerator(77).query(10)
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    serial_splits = optimize_serial(query, settings).stats.splits_considered
    assert serial_splits == linear_split_count(10, 0)
    parallel = optimize_parallel(query, 32, settings)
    total_splits = sum(
        result.stats.splits_considered for result in parallel.partition_results
    )
    assert total_splits == 32 * linear_split_count(10, 5)
    assert total_splits / serial_splits < 1.5**5
