"""Property-based umbrella tests over the whole optimizer stack."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.costmodel import CostModel
from repro.plans.plan import JoinPlan, iter_join_result_masks
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

KINDS = [
    JoinGraphKind.STAR,
    JoinGraphKind.CHAIN,
    JoinGraphKind.CYCLE,
    JoinGraphKind.CLIQUE,
]

query_params = st.tuples(
    st.integers(min_value=4, max_value=7),  # tables
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from(KINDS),
)

relaxed = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@relaxed
@given(query_params, st.sampled_from([2, 4, 8]))
def test_mpq_equals_serial_linear(params, workers):
    """The headline invariant over random queries: MPQ == serial DP."""
    n, seed, kind = params
    query = SteinbrunnGenerator(seed).query(n, kind)
    cfg = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    serial_cost = best_plan(optimize_serial(query, cfg)).cost[0]
    parallel = optimize_parallel(query, workers, cfg)
    assert parallel.best.cost[0] == pytest.approx(serial_cost)


@relaxed
@given(query_params, st.sampled_from([2, 4]))
def test_mpq_equals_serial_bushy(params, workers):
    n, seed, kind = params
    query = SteinbrunnGenerator(seed).query(n, kind)
    cfg = OptimizerSettings(plan_space=PlanSpace.BUSHY)
    serial_cost = best_plan(optimize_serial(query, cfg)).cost[0]
    parallel = optimize_parallel(query, workers, cfg)
    assert parallel.best.cost[0] == pytest.approx(serial_cost)


@relaxed
@given(query_params)
def test_plan_tree_internally_consistent(params):
    """Every join node's mask/rows/cost agree with its children."""
    n, seed, kind = params
    query = SteinbrunnGenerator(seed).query(n, kind)
    cfg = OptimizerSettings()
    plan = best_plan(optimize_serial(query, cfg))
    estimator = CardinalityEstimator(query)

    def check(node):
        if isinstance(node, JoinPlan):
            assert node.mask == node.left.mask | node.right.mask
            assert node.left.mask & node.right.mask == 0
            assert node.rows == pytest.approx(estimator.rows(node.mask))
            assert node.cost[0] >= node.left.cost[0] + node.right.cost[0]
            check(node.left)
            check(node.right)

    check(plan)
    assert plan.mask == query.all_tables_mask


@relaxed
@given(query_params)
def test_join_results_strictly_grow_leftdeep(params):
    """A left-deep plan's intermediate results form a strict chain."""
    n, seed, kind = params
    query = SteinbrunnGenerator(seed).query(n, kind)
    plan = best_plan(optimize_serial(query, OptimizerSettings()))
    masks = iter_join_result_masks(plan)
    for smaller, larger in zip(masks, masks[1:]):
        assert smaller & larger == smaller
        assert larger.bit_count() == smaller.bit_count() + 1


@relaxed
@given(query_params)
def test_multiobjective_contains_single_objective_optimum(params):
    """The exact Pareto frontier contains a plan matching the time optimum."""
    n, seed, kind = params
    query = SteinbrunnGenerator(seed).query(n, kind)
    single = best_plan(optimize_serial(query, OptimizerSettings()))
    multi = optimize_serial(
        query, OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0)
    )
    frontier_times = [plan.cost[0] for plan in multi.plans]
    assert min(frontier_times) == pytest.approx(single.cost[0])


@relaxed
@given(
    st.integers(min_value=4, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
def test_cardinality_symmetric_composition(n, seed):
    """rows(A | B) is independent of how the union is split."""
    query = SteinbrunnGenerator(seed).query(n)
    estimator = CardinalityEstimator(query)
    full = query.all_tables_mask
    for left in range(1, full):
        right = full ^ left
        if right == 0:
            continue
        left_rows, right_rows = estimator.rows(left), estimator.rows(right)
        if left_rows <= 1.0 or right_rows <= 1.0:
            continue  # the one-row floor breaks exact factorization
        via_product = left_rows * right_rows * estimator.join_selectivity(left, right)
        assert estimator.rows(full) == pytest.approx(max(via_product, 1.0), rel=1e-6)
