"""The README quickstart, executed verbatim as a guard against doc rot."""

from __future__ import annotations

from repro import (
    OptimizerSettings,
    PlanSpace,
    make_star_query,
    optimize_mpq,
    optimize_multi_objective,
    optimize_serial,
)
from repro.core.serial import best_plan


def test_readme_quickstart():
    query = make_star_query(10, seed=1)

    serial = optimize_serial(query)
    assert best_plan(serial).pretty()

    report = optimize_mpq(query, n_workers=16)
    assert report.best.cost[0] == best_plan(serial).cost[0]
    assert report.simulated_time_ms > 0
    assert report.network_bytes > 0
    assert report.max_worker_memory_relations > 0

    bushy = optimize_mpq(query, 8, OptimizerSettings(plan_space=PlanSpace.BUSHY))
    assert bushy.best.cost[0] <= report.best.cost[0] * (1 + 1e-9)

    frontier = optimize_multi_objective(query, 8, alpha=10.0)
    assert len(frontier.plans) >= 1
