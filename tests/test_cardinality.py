"""Cardinality estimation."""

from __future__ import annotations

import pytest

from repro.cost.cardinality import CardinalityEstimator
from tests.conftest import make_manual_query


class TestBaseTables:
    def test_singleton(self):
        query = make_manual_query([100, 200])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b01) == 100.0
        assert estimator.rows(0b10) == 200.0

    def test_empty_set_rejected(self):
        estimator = CardinalityEstimator(make_manual_query([10]))
        with pytest.raises(ValueError):
            estimator.rows(0)


class TestJoins:
    def test_cross_product(self):
        query = make_manual_query([100, 200])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b11) == 100.0 * 200.0

    def test_predicate_applies(self):
        query = make_manual_query([100, 200], [(0, 1, 0.01)])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b11) == pytest.approx(100 * 200 * 0.01)

    def test_predicate_only_when_both_present(self):
        query = make_manual_query([100, 200, 300], [(0, 2, 0.01)])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b011) == 100 * 200

    def test_multiple_predicates_multiply(self):
        query = make_manual_query(
            [100, 200, 300], [(0, 1, 0.1), (1, 2, 0.01), (0, 2, 0.5)]
        )
        estimator = CardinalityEstimator(query)
        expected = 100 * 200 * 300 * 0.1 * 0.01 * 0.5
        assert estimator.rows(0b111) == pytest.approx(expected)

    def test_floor_at_one_row(self):
        query = make_manual_query([10, 10], [(0, 1, 0.0001)])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b11) == 1.0

    def test_memoization_returns_same(self):
        query = make_manual_query([100, 200], [(0, 1, 0.01)])
        estimator = CardinalityEstimator(query)
        assert estimator.rows(0b11) == estimator.rows(0b11)


class TestJoinSelectivity:
    def test_cross_product_is_one(self):
        query = make_manual_query([10, 20, 30], [(0, 1, 0.1)])
        estimator = CardinalityEstimator(query)
        assert estimator.join_selectivity(0b001, 0b100) == 1.0

    def test_connecting_predicates(self):
        query = make_manual_query([10, 20, 30], [(0, 1, 0.1), (0, 2, 0.2)])
        estimator = CardinalityEstimator(query)
        assert estimator.join_selectivity(0b001, 0b110) == pytest.approx(0.02)

    def test_rejects_overlapping_operands(self):
        estimator = CardinalityEstimator(make_manual_query([10, 20]))
        with pytest.raises(ValueError):
            estimator.join_selectivity(0b11, 0b01)

    def test_consistent_with_rows(self):
        query = make_manual_query([10, 20, 30], [(0, 1, 0.1), (1, 2, 0.05)])
        estimator = CardinalityEstimator(query)
        left, right = 0b011, 0b100
        expected = (
            estimator.rows(left)
            * estimator.rows(right)
            * estimator.join_selectivity(left, right)
        )
        assert estimator.rows(left | right) == pytest.approx(expected)
