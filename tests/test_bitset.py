"""Bitmask table-set helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit,
    bits,
    iter_proper_nonempty_subsets,
    iter_subsets,
    lowest_bit_index,
    mask_of,
    popcount,
)


class TestBit:
    def test_bit_zero(self):
        assert bit(0) == 1

    def test_bit_five(self):
        assert bit(5) == 32

    def test_bits_disjoint(self):
        assert bit(3) & bit(4) == 0


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_single(self):
        assert mask_of([2]) == 4

    def test_several(self):
        assert mask_of([0, 1, 3]) == 0b1011

    def test_duplicates_collapse(self):
        assert mask_of([1, 1, 1]) == 2

    def test_generator_input(self):
        assert mask_of(i for i in range(3)) == 7


class TestPopcount:
    def test_empty(self):
        assert popcount(0) == 0

    def test_full(self):
        assert popcount(0b1111) == 4

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_bin(self, mask):
        assert popcount(mask) == bin(mask).count("1")


class TestBits:
    def test_empty(self):
        assert list(bits(0)) == []

    def test_ascending(self):
        assert list(bits(0b10110)) == [1, 2, 4]

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_roundtrip(self, indices):
        assert set(bits(mask_of(indices))) == indices


class TestLowestBitIndex:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lowest_bit_index(0)

    def test_single(self):
        assert lowest_bit_index(0b1000) == 3

    def test_multi(self):
        assert lowest_bit_index(0b1010) == 1


class TestIterSubsets:
    def test_empty_mask(self):
        assert list(iter_subsets(0)) == [0]

    def test_counts(self):
        assert len(list(iter_subsets(0b111))) == 8

    def test_all_are_subsets(self):
        mask = 0b10110
        for sub in iter_subsets(mask):
            assert sub & mask == sub

    def test_distinct(self):
        subs = list(iter_subsets(0b1101))
        assert len(subs) == len(set(subs)) == 8

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_cardinality(self, mask):
        assert len(list(iter_subsets(mask))) == 2 ** popcount(mask)


class TestProperNonemptySubsets:
    def test_empty_mask(self):
        assert list(iter_proper_nonempty_subsets(0)) == []

    def test_singleton_mask(self):
        assert list(iter_proper_nonempty_subsets(0b100)) == []

    def test_pair(self):
        assert sorted(iter_proper_nonempty_subsets(0b11)) == [1, 2]

    @given(st.integers(min_value=0, max_value=2**10 - 1))
    def test_excludes_trivial(self, mask):
        subs = list(iter_proper_nonempty_subsets(mask))
        assert 0 not in subs
        assert mask not in subs
        expected = max(2 ** popcount(mask) - 2, 0)
        assert len(subs) == expected
