"""The out-of-process gateway: framing, routing, breaking, real processes.

Four layers of test, cheapest first:

* **framing** — the length-prefixed strict-JSON codec over socketpairs:
  round trips, torn frames, oversized frames, non-standard constants;
* **routing and breaking** — the consistent-hash ring's determinism and
  minimal-remap property, and the circuit breaker's closed → open →
  half-open state machine under a fake clock;
* **protocol faults** — an in-process :class:`ShardServer` abused with
  half-written frames, oversized frames, and mid-request disconnects must
  answer with typed errors where it can and keep serving every other
  connection;
* **real processes** — ``python -m repro shard-server`` subprocesses over
  unix sockets: a 64-client traffic replay across two shard processes pays
  exactly one DP run per unique fingerprint (the system invariant,
  now across process boundaries), and killing a shard mid-traffic trips
  its breaker while the surviving shard keeps serving — no client hangs.
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_threaded,
    unique_fingerprints,
)
from repro.cluster.network import (
    FrameError,
    OversizedFrameError,
    decode_frame_payload,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.query.generator import SteinbrunnGenerator
from repro.service import (
    CircuitBreaker,
    ConsistentHashRing,
    GatewayOverloadedError,
    NetworkOptimizerGateway,
    RemoteOptimizationError,
    ShardedOptimizerGateway,
    ShardServer,
    ShardUnavailableError,
)
from repro.service.net import Address, result_from_wire, result_to_wire


# ---------------------------------------------------------------------- framing


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "x", "values": [1, 2.5, "three"], "nested": {"a": None}}
        assert decode_frame_payload(encode_frame(payload)[4:]) == payload

    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        with left, right:
            send_frame(left, {"op": "ping", "n": 7})
            assert recv_frame(right) == {"op": "ping", "n": 7}

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        with right:
            left.close()
            assert recv_frame(right) is None

    def test_torn_header_raises(self):
        left, right = socket.socketpair()
        with right:
            left.sendall(b"\x00\x00")  # half a length prefix
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)

    def test_torn_body_raises(self):
        left, right = socket.socketpair()
        with right:
            left.sendall(struct.pack(">I", 100) + b"twenty bytes only...")
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)

    def test_oversized_encode_refused(self):
        with pytest.raises(OversizedFrameError):
            encode_frame({"blob": "x" * 100}, max_frame_bytes=50)

    def test_oversized_announcement_refused_before_allocation(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(OversizedFrameError):
                recv_frame(right, max_frame_bytes=1024)

    def test_malformed_json_raises(self):
        with pytest.raises(FrameError):
            decode_frame_payload(b"this is not json")

    def test_non_dict_payload_raises(self):
        with pytest.raises(FrameError):
            decode_frame_payload(b"[1, 2, 3]")

    @pytest.mark.parametrize("token", [b"NaN", b"Infinity", b"-Infinity"])
    def test_bare_nonfinite_tokens_rejected(self, token):
        # json.dumps would emit these for non-finite floats; the wire
        # refuses them — non-finite values travel as sentinel strings.
        with pytest.raises(FrameError):
            decode_frame_payload(b'{"cost": ' + token + b"}")

    def test_nan_payload_refused_on_encode(self):
        with pytest.raises(ValueError):
            encode_frame({"cost": float("nan")})

    def test_async_reader_matches_sync(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "a"}) + encode_frame({"op": "b"}))
            reader.feed_eof()
            from repro.cluster.network import read_frame

            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"op": "a"}
        assert second == {"op": "b"}
        assert third is None

    def test_async_reader_torn_frame(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "a"})[:-3])
            reader.feed_eof()
            from repro.cluster.network import read_frame

            with pytest.raises(FrameError):
                await read_frame(reader)

        asyncio.run(scenario())


# --------------------------------------------------------------------- address


class TestAddress:
    def test_unix(self):
        address = Address.parse("unix:/run/mpq/shard.sock")
        assert address.kind == "unix"
        assert address.path == "/run/mpq/shard.sock"
        assert str(address) == "unix:/run/mpq/shard.sock"

    def test_tcp(self):
        address = Address.parse("10.0.0.3:7401")
        assert (address.kind, address.host, address.port) == ("tcp", "10.0.0.3", 7401)

    def test_bare_port_defaults_to_localhost(self):
        assert Address.parse(":7401").host == "127.0.0.1"

    @pytest.mark.parametrize("bad", ["", "unix:", "nocolon", "host:notaport"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            Address.parse(bad)


# ------------------------------------------------------------------------- ring


class TestConsistentHashRing:
    def keys(self, n=400):
        import hashlib

        return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]

    def test_routing_is_deterministic(self):
        ring = ConsistentHashRing()
        for shard in ("a", "b", "c"):
            ring.add(shard)
        again = ConsistentHashRing()
        for shard in ("c", "a", "b"):  # insertion order must not matter
            again.add(shard)
        for key in self.keys():
            assert ring.route(key) == again.route(key)

    def test_every_shard_owns_keys(self):
        ring = ConsistentHashRing()
        for shard in ("a", "b", "c", "d"):
            ring.add(shard)
        owners = {ring.route(key) for key in self.keys()}
        assert owners == {"a", "b", "c", "d"}

    def test_removal_remaps_only_the_lost_shards_keys(self):
        ring = ConsistentHashRing()
        for shard in ("a", "b", "c", "d"):
            ring.add(shard)
        before = {key: ring.route(key) for key in self.keys()}
        ring.remove("c")
        for key, owner in before.items():
            if owner != "c":
                assert ring.route(key) == owner  # untouched keys stay put
            else:
                assert ring.route(key) != "c"

    def test_add_is_minimal_remap(self):
        ring = ConsistentHashRing()
        for shard in ("a", "b", "c"):
            ring.add(shard)
        before = {key: ring.route(key) for key in self.keys()}
        ring.add("d")
        moved = sum(
            1 for key, owner in before.items() if ring.route(key) != owner
        )
        # An added shard takes ~1/4 of the space; far below a full reshuffle.
        assert 0 < moved < len(before) / 2
        assert all(
            ring.route(key) == "d"
            for key, owner in before.items()
            if ring.route(key) != owner
        )

    def test_add_idempotent_remove_unknown_noop(self):
        ring = ConsistentHashRing()
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        ring.remove("ghost")
        assert ring.shards() == ["a"]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().route("00000000" + "0" * 56)

    def test_bad_replicas(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)


# ---------------------------------------------------------------------- breaker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=1.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, reset, clock=clock), clock

    def test_stays_closed_below_threshold(self):
        breaker, __ = self.make()
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, __ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # consecutive, not cumulative

    def test_opens_at_threshold_and_fails_fast(self):
        breaker, clock = self.make()
        for __ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0 < breaker.retry_after_s() <= 1.0
        clock.now += 0.5
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(0.5)

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for __ in range(3):
            breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # a second request is still refused

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for __ in range(3):
            breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_timeout(self):
        breaker, clock = self.make()
        for __ in range(3):
            breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now += 1.0
        assert breaker.allow()  # next probe window

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0)


# ----------------------------------------------------------------- result codec


class TestResultCodec:
    def test_round_trip(self):
        import json

        query = SteinbrunnGenerator(2).query(5)
        with ShardedOptimizerGateway(n_shards=1) as gateway:
            result = gateway.optimize(query)
        decoded = result_from_wire(
            json.loads(json.dumps(result_to_wire(result), allow_nan=False))
        )
        assert decoded == result

    def test_malformed_fails_loudly(self):
        with pytest.raises(ValueError):
            result_from_wire({"plans": []})


# ------------------------------------------------------- in-process shard server


class ServerThread:
    """Run a :class:`ShardServer` on its own event loop in a daemon thread."""

    def __init__(self, listen: str, **kwargs) -> None:
        self.server = ShardServer(listen, **kwargs)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server never started"

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and not self.server._stopped.is_set():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(10)
        self._thread.join(10)
        self.server.gateway.close()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@pytest.fixture
def server(tmp_path):
    with ServerThread(f"unix:{tmp_path / 'shard.sock'}", n_workers=2) as running:
        yield running


def connect_raw(server: ServerThread) -> socket.socket:
    """A raw client socket past the hello handshake."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(server.server.address.path)
    hello = recv_frame(sock)
    assert hello is not None and hello["op"] == "hello"
    return sock


class TestProtocolFaults:
    def test_hello_handshake(self, server):
        with connect_raw(server):
            pass  # connect_raw already asserted the hello frame

    def test_half_written_frame_drops_only_that_connection(self, server):
        with connect_raw(server) as sock:
            sock.sendall(struct.pack(">I", 500) + b"only a fragment")
            sock.shutdown(socket.SHUT_WR)  # crash mid-frame
            # Best-effort error frame or plain close; either way no hang.
            sock.recv(4096)
        with connect_raw(server) as sock:  # the server keeps serving
            send_frame(sock, {"op": "health"})
            assert recv_frame(sock)["status"] == "serving"
        assert server.server._protocol_errors >= 1

    def test_oversized_frame_rejected_with_typed_error(self, tmp_path):
        with ServerThread(
            f"unix:{tmp_path / 'small.sock'}", n_workers=2, max_frame_bytes=4096
        ) as small:
            with connect_raw(small) as sock:
                sock.sendall(struct.pack(">I", 1 << 20))
                response = recv_frame(sock)
                assert response["ok"] is False
                assert response["error"]["type"] == "protocol"
                assert "limit" in response["error"]["message"]
                # The stream is desynchronized; the server hangs up on us.
                assert sock.recv(4096) == b""
            with connect_raw(small) as sock:
                send_frame(sock, {"op": "health"})
                assert recv_frame(sock)["ok"] is True

    def test_malformed_json_rejected(self, server):
        with connect_raw(server) as sock:
            body = b"{definitely not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = recv_frame(sock)
            assert response["error"]["type"] == "protocol"

    def test_bare_infinity_token_rejected(self, server):
        with connect_raw(server) as sock:
            body = b'{"op": "optimize", "cost": Infinity}'
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = recv_frame(sock)
            assert response["error"]["type"] == "protocol"
            assert "sentinel" in response["error"]["message"]

    def test_peer_disconnect_mid_request_leaves_server_serving(self, server):
        from repro.query.io import query_to_dict

        query = SteinbrunnGenerator(3).query(5)
        with connect_raw(server) as sock:
            send_frame(sock, {"op": "optimize", "query": query_to_dict(query)})
            # Hang up before the (running) optimization can answer.
        time.sleep(0.3)
        with connect_raw(server) as sock:
            send_frame(sock, {"op": "health"})
            assert recv_frame(sock)["status"] == "serving"

    def test_unknown_op_is_bad_request(self, server):
        with connect_raw(server) as sock:
            send_frame(sock, {"op": "teleport"})
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-request"

    def test_malformed_optimize_is_bad_request(self, server):
        with connect_raw(server) as sock:
            send_frame(sock, {"op": "optimize", "query": {"tables": "nope"}})
            response = recv_frame(sock)
            assert response["error"]["type"] == "bad-request"

    def test_overload_rejection_carries_retry_after(self, server):
        from repro.query.io import query_to_dict

        server.server._in_flight = server.server.max_in_flight  # saturate
        try:
            with connect_raw(server) as sock:
                send_frame(
                    sock,
                    {
                        "op": "optimize",
                        "query": query_to_dict(SteinbrunnGenerator(4).query(4)),
                    },
                )
                response = recv_frame(sock)
                assert response["error"]["type"] == "overloaded"
                assert response["error"]["retry_after_s"] > 0
        finally:
            server.server._in_flight = 0

    def test_draining_rejection(self, server):
        from repro.query.io import query_to_dict

        server.server._draining = True
        try:
            with connect_raw(server) as sock:
                send_frame(sock, {"op": "health"})
                assert recv_frame(sock)["status"] == "draining"
                send_frame(
                    sock,
                    {
                        "op": "optimize",
                        "query": query_to_dict(SteinbrunnGenerator(4).query(4)),
                    },
                )
                response = recv_frame(sock)
                assert response["error"]["type"] == "draining"
                assert response["error"]["retry_after_s"] > 0
        finally:
            server.server._draining = False


# --------------------------------------------------------- client-side gateway


class TestNetworkGateway:
    def test_results_match_in_process_gateway(self, server, tmp_path):
        queries = SteinbrunnGenerator(6).queries(4, n_tables=5)
        with ShardedOptimizerGateway(n_shards=1, n_workers=2) as local:
            expected = [local.optimize(query) for query in queries]
        with NetworkOptimizerGateway(
            {"s0": f"unix:{tmp_path / 'shard.sock'}"}, n_workers=2
        ) as gateway:
            remote = [gateway.optimize(query) for query in queries]
        for local_result, remote_result in zip(expected, remote):
            assert remote_result.fingerprint == local_result.fingerprint
            assert remote_result.plans == local_result.plans
            assert remote_result.best.cost == local_result.best.cost

    def test_repeat_is_served_from_shard_cache(self, server, tmp_path):
        query = SteinbrunnGenerator(6).query(5)
        with NetworkOptimizerGateway(
            {"s0": f"unix:{tmp_path / 'shard.sock'}"}, n_workers=2
        ) as gateway:
            first = gateway.optimize(query)
            second = gateway.optimize(query)
        assert not first.cached
        assert second.cached
        assert second.plans == first.plans

    def test_overload_surfaces_as_typed_error(self, server, tmp_path):
        server.server._in_flight = server.server.max_in_flight
        try:
            with NetworkOptimizerGateway(
                {"s0": f"unix:{tmp_path / 'shard.sock'}"}, n_workers=2
            ) as gateway:
                with pytest.raises(GatewayOverloadedError) as excinfo:
                    gateway.optimize(SteinbrunnGenerator(8).query(4))
            assert excinfo.value.retry_after_s > 0
        finally:
            server.server._in_flight = 0

    def test_remote_failure_is_typed(self, server, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("injected enumeration failure")

        monkeypatch.setattr(server.server.gateway, "optimize", explode)
        with NetworkOptimizerGateway(
            {"s0": f"unix:{tmp_path / 'shard.sock'}"}, n_workers=2
        ) as gateway:
            with pytest.raises(RemoteOptimizationError) as excinfo:
                gateway.optimize(SteinbrunnGenerator(5).query(4))
            assert excinfo.value.error_type == "optimization-failed"
            assert "injected" in str(excinfo.value)

    def test_dead_endpoint_trips_breaker_then_fails_fast(self, tmp_path):
        with NetworkOptimizerGateway(
            {"dead": f"unix:{tmp_path / 'nobody-home.sock'}"},
            failure_threshold=3,
            reset_timeout_s=60.0,
        ) as gateway:
            query = SteinbrunnGenerator(9).query(4)
            for __ in range(3):
                with pytest.raises(ShardUnavailableError):
                    gateway.optimize(query)
            started = time.perf_counter()
            with pytest.raises(ShardUnavailableError) as excinfo:
                gateway.optimize(query)
            assert time.perf_counter() - started < 0.1  # no connection attempt
            assert "circuit breaker open" in excinfo.value.reason
            assert excinfo.value.retry_after_s > 0
            assert gateway.stats()["breaker_rejections"] >= 1

    def test_breaker_recovers_through_half_open_probe(self, tmp_path):
        sock_path = tmp_path / "late.sock"
        with NetworkOptimizerGateway(
            {"late": f"unix:{sock_path}"},
            failure_threshold=2,
            reset_timeout_s=0.2,
            n_workers=2,
        ) as gateway:
            query = SteinbrunnGenerator(9).query(4)
            for __ in range(2):
                with pytest.raises(ShardUnavailableError):
                    gateway.optimize(query)
            with ServerThread(f"unix:{sock_path}", n_workers=2):
                time.sleep(0.25)  # past the reset timeout: probe admitted
                result = gateway.optimize(query)
                assert result.plans
                report = gateway.check_health()
                assert report["late"]["breaker"] == "closed"

    def test_health_check_reports_unreachable(self, tmp_path):
        with NetworkOptimizerGateway(
            {"dead": f"unix:{tmp_path / 'void.sock'}"}, failure_threshold=1
        ) as gateway:
            report = gateway.check_health()
            assert report["dead"]["reachable"] is False
            assert gateway.check_health()["dead"]["status"] == "circuit-open"

    def test_add_remove_shard(self, server, tmp_path):
        with NetworkOptimizerGateway(
            {"s0": f"unix:{tmp_path / 'shard.sock'}"}, n_workers=2
        ) as gateway:
            gateway.add_shard("s1", "unix:/tmp/unused.sock")
            assert gateway.shard_names() == ["s0", "s1"]
            with pytest.raises(ValueError):
                gateway.add_shard("s1", "unix:/tmp/other.sock")
            gateway.remove_shard("s1")
            assert gateway.shard_names() == ["s0"]
            # Still serves after the topology change.
            assert gateway.optimize(SteinbrunnGenerator(6).query(4)).plans

    def test_overload_retry_sleeps_at_least_the_floor(self, tmp_path, monkeypatch):
        """Regression: a shard advertising ``retry_after_s=0`` must not
        busy-spin the retry loop — every sleep is clamped to the positive
        floor (and still capped at one second from above)."""
        from repro.service.net import OVERLOAD_RETRY_FLOOR_S
        import repro.service.net as net_module

        sleeps: list[float] = []
        monkeypatch.setattr(net_module.time, "sleep", sleeps.append)
        with NetworkOptimizerGateway(
            {"s0": f"unix:{tmp_path / 'unused.sock'}"}, overload_retries=4
        ) as gateway:
            for retry_after_s, expected in [(0.0, OVERLOAD_RETRY_FLOOR_S), (999.0, 1.0)]:
                sleeps.clear()
                response = {
                    "ok": False,
                    "error": {"type": "overloaded", "retry_after_s": retry_after_s},
                }
                monkeypatch.setattr(
                    gateway, "_attempt", lambda key, payload: ("s0", response)
                )
                with pytest.raises(GatewayOverloadedError):
                    gateway.optimize(SteinbrunnGenerator(7).query(4))
                assert sleeps == [expected] * 4

    def test_remove_shard_races_in_flight_requests(self, tmp_path):
        """Regression: ``remove_shard`` used to close pooled sockets under
        requests that had already checked them out, tearing frames
        mid-stream.  Now in-flight round trips complete undisturbed and a
        request that grabs the link after close fails with a *typed* error
        — clients see only success or ShardUnavailableError, never a raw
        FrameError or a hang."""
        with (
            ServerThread(f"unix:{tmp_path / 'r0.sock'}", n_workers=2) as __,
            ServerThread(f"unix:{tmp_path / 'r1.sock'}", n_workers=2) as ___,
        ):
            pool = SteinbrunnGenerator(14).queries(6, n_tables=4)
            failures: list[Exception] = []
            successes = [0]
            lock = threading.Lock()

            with NetworkOptimizerGateway(
                {
                    "r0": f"unix:{tmp_path / 'r0.sock'}",
                    "r1": f"unix:{tmp_path / 'r1.sock'}",
                },
                n_workers=2,
                overload_retries=50,
            ) as gateway:
                for query in pool:
                    gateway.optimize(query)  # warm both shards
                stop = threading.Event()

                def client(seed: int) -> None:
                    while not stop.is_set():
                        try:
                            gateway.optimize(pool[seed % len(pool)])
                        except ShardUnavailableError:
                            pass  # the removed shard's typed goodbye
                        except Exception as error:  # noqa: BLE001
                            with lock:
                                failures.append(error)
                        else:
                            with lock:
                                successes[0] += 1

                threads = [
                    threading.Thread(target=client, args=(i,), daemon=True)
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                time.sleep(0.2)  # requests in full flight
                gateway.remove_shard("r0")
                time.sleep(0.2)  # keep hammering the shrunken ring
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
                    assert not thread.is_alive(), "client hung after removal"
            assert not failures, failures
            assert successes[0] > 0

    def test_drain_flushes_and_stops_the_server(self, tmp_path):
        with ServerThread(f"unix:{tmp_path / 'd.sock'}", n_workers=2) as running:
            with NetworkOptimizerGateway(
                {"d": f"unix:{tmp_path / 'd.sock'}"}, n_workers=2
            ) as gateway:
                gateway.optimize(SteinbrunnGenerator(6).query(4))
                assert gateway.drain() == {"d": True}
                # Post-drain the endpoint is gone: typed failure, no hang.
                with pytest.raises(ShardUnavailableError):
                    gateway.optimize(SteinbrunnGenerator(6).query(5))
            assert running.server._stopped.is_set()


# ----------------------------------------------------------- real shard processes


def spawn_shard(listen: str, shard_id: int, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "shard-server",
            "--listen",
            listen,
            "--shard-id",
            str(shard_id),
            "--workers",
            "2",
            *extra,
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_for_sockets(paths: list[Path], timeout_s: float = 20.0) -> None:
    deadline = time.perf_counter() + timeout_s
    for path in paths:
        while not path.exists():
            if time.perf_counter() > deadline:
                raise RuntimeError(f"shard socket {path} never appeared")
            time.sleep(0.05)


@pytest.fixture
def two_shards(tmp_path):
    socks = [tmp_path / f"shard-{i}.sock" for i in range(2)]
    procs = [
        spawn_shard(f"unix:{sock}", i, "--max-in-flight", "64")
        for i, sock in enumerate(socks)
    ]
    try:
        wait_for_sockets(socks)
        yield {f"shard-{i}": f"unix:{sock}" for i, sock in enumerate(socks)}, procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()


class TestCrossProcessInvariant:
    def test_64_client_herd_pays_one_dp_run_per_fingerprint(self, two_shards):
        """The acceptance criterion: a 64-client replay over two shard
        *processes* performs exactly one DP enumeration per unique
        fingerprint — deterministic ring routing keeps each fingerprint's
        coalescing local to one server's singleflight table."""
        shards, __ = two_shards
        profile = TrafficProfile(n_requests=96, n_unique=10, tables=(4, 5))
        schedule = generate_traffic(profile)
        expected = unique_fingerprints(schedule)
        with NetworkOptimizerGateway(
            shards, overload_retries=500, request_timeout_s=120.0
        ) as gateway:
            report = replay_threaded(gateway, schedule, n_clients=64)
            stats = gateway.stats()
        assert len(report.results) == len(schedule)
        assert all(result.plans for result in report.results)
        per_shard = {
            name: shard["optimizations"] for name, shard in stats["shards"].items()
        }
        assert sum(per_shard.values()) == len(expected), per_shard
        # Both processes actually participated (the ring spread the keys).
        assert all(count > 0 for count in per_shard.values()), per_shard

    def test_replay_is_correct_not_just_counted(self, two_shards):
        shards, __ = two_shards
        schedule = generate_traffic(
            TrafficProfile(n_requests=24, n_unique=6, tables=(4, 5))
        )
        with ShardedOptimizerGateway(n_shards=2, n_workers=2) as local:
            expected = {}
            for request in schedule:
                result = local.optimize(
                    request.query, request.settings, request.n_workers
                )
                expected[result.fingerprint] = result
        with NetworkOptimizerGateway(shards, overload_retries=500) as gateway:
            report = replay_threaded(gateway, schedule, n_clients=8)
        for result in report.results:
            baseline = expected[result.fingerprint]
            assert result.best.cost == baseline.best.cost
            assert result.plans == baseline.plans

    def test_killing_one_shard_trips_breaker_and_spares_the_rest(self, two_shards):
        """Kill a shard mid-traffic: its keys fail with typed errors (first
        transport failures, then instant breaker rejections, each carrying
        ``retry_after_s``), the surviving shard keeps serving its keys, and
        no client hangs."""
        shards, procs = two_shards
        pool = SteinbrunnGenerator(11).queries(12, n_tables=4)
        with NetworkOptimizerGateway(
            shards,
            failure_threshold=3,
            reset_timeout_s=30.0,
            connect_timeout_s=2.0,
            request_timeout_s=15.0,
        ) as gateway:
            by_shard: dict[str, list] = {"shard-0": [], "shard-1": []}
            for query in pool:
                result = gateway.optimize(query)  # warm both shards
                by_shard[gateway.shard_for(result.fingerprint)].append(query)
            assert by_shard["shard-0"] and by_shard["shard-1"], (
                "seed must spread keys over both shards"
            )
            procs[1].kill()
            procs[1].wait(10)

            outcomes: dict[str, list] = {"shard-0": [], "shard-1": []}
            lock = threading.Lock()

            def client(queries):
                for query in queries:
                    owner = "shard-0" if query in by_shard["shard-0"] else "shard-1"
                    try:
                        result = gateway.optimize(query)
                        outcome = ("ok", result.cached)
                    except ShardUnavailableError as error:
                        assert error.retry_after_s >= 0
                        outcome = ("unavailable", error.reason)
                    with lock:
                        outcomes[owner].append(outcome)

            threads = [
                threading.Thread(target=client, args=(pool,)) for __ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "client thread hung"

            # Every surviving-shard request succeeded, served from cache.
            assert all(kind == "ok" for kind, __ in outcomes["shard-0"])
            # Every dead-shard request failed *typed* — and the breaker is
            # open, so late failures were instant rejections.
            assert all(kind == "unavailable" for kind, __ in outcomes["shard-1"])
            assert any(
                "circuit breaker open" in detail
                for __, detail in outcomes["shard-1"]
            )
            report = gateway.check_health()
            assert report["shard-1"]["breaker"] == "open"
            assert report["shard-0"]["status"] == "serving"
            # The survivor still takes new work.
            fresh = SteinbrunnGenerator(12).queries(6, n_tables=4)
            served = 0
            for query in fresh:
                try:
                    assert gateway.optimize(query).plans
                    served += 1
                except ShardUnavailableError:
                    pass  # routed to the dead shard
            assert served > 0


class TestWarmRestartOverTheWire:
    def test_shard_cache_log_survives_drain_and_restart(self, tmp_path):
        sock = tmp_path / "shard-0.sock"
        cache_dir = tmp_path / "cache"
        queries = SteinbrunnGenerator(13).queries(4, n_tables=5)

        proc = spawn_shard(f"unix:{sock}", 0, "--cache-dir", str(cache_dir))
        try:
            wait_for_sockets([sock])
            with NetworkOptimizerGateway({"shard-0": f"unix:{sock}"}) as gateway:
                first = [gateway.optimize(query) for query in queries]
                assert gateway.drain() == {"shard-0": True}
            assert proc.wait(20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()

        proc = spawn_shard(f"unix:{sock}", 0, "--cache-dir", str(cache_dir))
        try:
            wait_for_sockets([sock])
            with NetworkOptimizerGateway({"shard-0": f"unix:{sock}"}) as gateway:
                second = [gateway.optimize(query) for query in queries]
                assert gateway.drain() == {"shard-0": True}
            # Served from the persisted log: no fresh DP runs, same plans.
            assert all(result.cached for result in second)
            assert [result.plans for result in second] == [
                result.plans for result in first
            ]
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()


# --------------------------------------------------- seeded rebalance sweeps


class TestRingRebalanceProperties:
    """Seeded property sweeps over random membership churn.

    The fixed-scenario tests above pin the invariants on one topology; these
    drive random add/remove sequences and assert the same two rebalance
    invariants hold after *every* step: a removal remaps only the removed
    shard's keys, and an addition moves keys only onto the new shard.
    """

    def keys(self, n=300):
        import hashlib

        return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]

    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_churn_preserves_rebalance_invariants(self, seed):
        import random

        rng = random.Random(seed)
        keys = self.keys()
        ring = ConsistentHashRing(replicas=32)
        members: list[str] = []
        for index in range(3):  # never let the ring go empty
            name = f"seed-{index}"
            ring.add(name)
            members.append(name)
        fresh = iter(f"shard-{i}" for i in range(1000))
        for __ in range(40):
            before = {key: ring.route(key) for key in keys}
            if len(members) > 3 and rng.random() < 0.5:
                victim = rng.choice(members)
                members.remove(victim)
                ring.remove(victim)
                for key, owner in before.items():
                    if owner == victim:
                        assert ring.route(key) != victim
                    else:  # every other key stays put
                        assert ring.route(key) == owner
            else:
                joiner = next(fresh)
                members.append(joiner)
                ring.add(joiner)
                for key, owner in before.items():
                    after = ring.route(key)
                    # A key either stays put or lands on the joiner.
                    assert after == owner or after == joiner
            assert sorted(members) == ring.shards()

    @pytest.mark.parametrize("seed", [5, 41])
    def test_remove_then_re_add_restores_routing_exactly(self, seed):
        import random

        rng = random.Random(seed)
        keys = self.keys()
        ring = ConsistentHashRing(replicas=32)
        for index in range(6):
            ring.add(f"shard-{index}")
        baseline = {key: ring.route(key) for key in keys}
        for __ in range(10):
            shard = f"shard-{rng.randrange(6)}"
            ring.remove(shard)
            ring.add(shard)
            # Virtual-node positions depend only on the shard name, so a
            # bounce must restore the exact pre-departure routing table.
            assert {key: ring.route(key) for key in keys} == baseline


class TestCircuitBreakerHalfOpenRace:
    def test_exactly_one_probe_wins_the_race(self):
        # Many client threads consult an open breaker the instant its reset
        # timeout elapses: exactly one must be admitted as the half-open
        # probe, all others refused, on every seeded rerun.
        for round_index in range(20):
            clock = FakeClock()
            breaker = CircuitBreaker(1, 1.0, clock=clock)
            breaker.record_failure()
            assert breaker.state == "open"
            clock.now += 1.0 + round_index * 0.1
            n_threads = 8
            barrier = threading.Barrier(n_threads)
            admitted = []
            lock = threading.Lock()

            def probe():
                barrier.wait()
                allowed = breaker.allow()
                with lock:
                    admitted.append(allowed)

            threads = [threading.Thread(target=probe) for __ in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert admitted.count(True) == 1
            assert breaker.state == "half-open"

    def test_probe_outcome_race_settles_deterministically(self):
        # While the probe is in flight, concurrent allow() calls keep
        # refusing; the probe's failure reopens and restarts the timeout.
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()
        stop = threading.Event()
        refused = []

        def hammer():
            while not stop.is_set():
                refused.append(breaker.allow())

        thread = threading.Thread(target=hammer)
        thread.start()
        time.sleep(0.02)
        breaker.record_failure()  # probe fails → reopen
        stop.set()
        thread.join()
        assert not any(refused)
        assert breaker.state == "open"
        assert breaker.retry_after_s() == pytest.approx(1.0)
