"""Shared fixtures: small deterministic queries and common settings."""

from __future__ import annotations

import pytest

from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.query.generator import SteinbrunnGenerator
from repro.query.predicates import JoinPredicate
from repro.query.query import JoinGraphKind, Query
from repro.query.schema import Column, Table


def make_manual_query(cardinalities, predicates=(), name="manual"):
    """Query with given table cardinalities and (i, j, selectivity) predicates.

    Every table gets two columns with domain size 100; predicate selectivity
    is set explicitly so tests can compute expected costs by hand.
    """
    tables = tuple(
        Table(
            name=f"T{i}",
            cardinality=cardinality,
            columns=(Column("c0", 100), Column("c1", 100)),
        )
        for i, cardinality in enumerate(cardinalities)
    )
    preds = tuple(
        JoinPredicate(
            left_table=i,
            left_column="c0",
            right_table=j,
            right_column="c0",
            selectivity=selectivity,
        )
        for i, j, selectivity in predicates
    )
    return Query(tables=tables, predicates=preds, name=name)


@pytest.fixture
def star4():
    """Deterministic 4-table star query."""
    return SteinbrunnGenerator(11).query(4, JoinGraphKind.STAR)


@pytest.fixture
def star6():
    """Deterministic 6-table star query."""
    return SteinbrunnGenerator(12).query(6, JoinGraphKind.STAR)


@pytest.fixture
def chain5():
    """Deterministic 5-table chain query."""
    return SteinbrunnGenerator(13).query(5, JoinGraphKind.CHAIN)


@pytest.fixture
def linear_settings():
    """Single-objective left-deep settings (library default)."""
    return OptimizerSettings(plan_space=PlanSpace.LINEAR)


@pytest.fixture
def bushy_settings():
    """Single-objective bushy settings."""
    return OptimizerSettings(plan_space=PlanSpace.BUSHY)


@pytest.fixture
def multi_settings():
    """Two-metric settings with exact Pareto pruning."""
    return OptimizerSettings(
        plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=1.0
    )
