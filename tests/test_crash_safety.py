"""Crash injection for the disk cache: torn logs, failed compactions, locks.

The append-only log's whole value is surviving ungraceful death.  These
tests kill it at every awkward moment — mid-append, mid-compact, between
snapshot and swap — then reopen and require that recovery serves every
record up to the torn tail and that the tier *keeps serving* (no
closed-handle ``ValueError``, no leaked temp files).  The single-writer
lock tests pin the PR 7 fix for two processes silently interleaving
appends into one log.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import DiskTier, DiskTierLockedError
from repro.service.tiers import LOG_MAGIC, _record_bytes

from tests.test_tiers import make_entry

try:
    import fcntl  # noqa: F401 - availability probe only
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

needs_flock = pytest.mark.skipif(fcntl is None, reason="fcntl unavailable")


def filled_tier(path: Path, n: int = 6) -> DiskTier:
    tier = DiskTier(path)
    for i in range(n):
        tier.put(f"key-{i}", make_entry(generation=i))
    return tier


class TestTornAppend:
    """Kill mid-append: the torn tail is dropped, everything before serves."""

    @pytest.mark.parametrize("torn_bytes", [1, 7, 40])
    def test_truncated_tail_recovers_all_complete_records(
        self, tmp_path, torn_bytes
    ):
        log = tmp_path / "cache.log"
        with filled_tier(log) as tier:
            boundary = tier.log_bytes()
            tier.put("torn", make_entry())
        # Re-create the crash: the final append only partially reached disk.
        with open(log, "r+b") as handle:
            handle.truncate(boundary + torn_bytes)
        with DiskTier(log) as reopened:
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]
            for i in range(6):
                assert reopened.get(f"key-{i}") == make_entry(generation=i)
            # The torn record is gone, and the log is usable for new writes.
            assert reopened.get("torn") is None
            reopened.put("after-crash", make_entry())
            assert reopened.get("after-crash") == make_entry()

    def test_unterminated_but_parseable_tail_is_dropped(self, tmp_path):
        # A record can be complete JSON yet missing its newline — fsync got
        # the text out but not the terminator.  Still a torn tail.
        log = tmp_path / "cache.log"
        with filled_tier(log, n=2) as tier:
            pass
        with open(log, "ab") as handle:
            record = _record_bytes({"t": "put", "k": "half", "entry": {}})
            handle.write(record.rstrip(b"\n"))
        with DiskTier(log) as reopened:
            assert sorted(reopened.keys()) == ["key-0", "key-1"]
            assert reopened.get("half") is None

    def test_recovery_truncates_garbage_tail_once(self, tmp_path):
        log = tmp_path / "cache.log"
        with filled_tier(log, n=3) as tier:
            good = tier.log_bytes()
        with open(log, "ab") as handle:
            handle.write(b'{"t": "put", "k": "junk", "en')
        with DiskTier(log):
            pass
        assert log.stat().st_size == good  # tail physically removed
        with DiskTier(log) as again:
            assert len(again.keys()) == 3


class TestCompactionFailure:
    """A failed compaction must leave the tier serving, handles open."""

    def test_snapshot_failure_leaves_tier_usable(self, tmp_path, monkeypatch):
        tier = filled_tier(tmp_path / "cache.log")
        monkeypatch.setattr(
            tier,
            "export_snapshot",
            lambda path: (_ for _ in ()).throw(OSError(28, "No space left")),
        )
        with pytest.raises(OSError):
            tier.compact()
        # The PR 7 bug: handles were closed before the failure surfaced, so
        # every later get/put raised ValueError("I/O operation on closed
        # file").  The tier must instead keep serving...
        assert tier.get("key-0") == make_entry(generation=0)
        tier.put("post-failure", make_entry())
        assert tier.get("post-failure") == make_entry()
        # ...and must not leak the temp snapshot.
        assert not list(tmp_path.glob("*.compact"))
        tier.close()

    def test_replace_failure_still_reopens_handles(self, tmp_path, monkeypatch):
        tier = filled_tier(tmp_path / "cache.log", n=4)
        real_replace = os.replace

        def failing_replace(src, dst):
            raise OSError(5, "injected replace failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            tier.compact()
        monkeypatch.setattr(os, "replace", real_replace)
        # The old log is intact and the handles were re-opened on it.
        assert sorted(tier.keys()) == [f"key-{i}" for i in range(4)]
        assert tier.get("key-2") == make_entry(generation=2)
        tier.put("after", make_entry())
        assert tier.get("after") == make_entry()
        assert not list(tmp_path.glob("*.compact"))
        tier.close()

    def test_successful_compact_still_works(self, tmp_path):
        tier = filled_tier(tmp_path / "cache.log")
        for i in range(6):
            tier.put(f"key-{i}", make_entry(generation=100 + i))  # supersede
        reclaimed = tier.compact()
        assert reclaimed > 0
        assert tier.get("key-3") == make_entry(generation=103)
        tier.put("fresh", make_entry())
        assert tier.get("fresh") == make_entry()
        assert not list(tmp_path.glob("*.compact"))
        tier.close()

    def test_orphaned_compact_file_cleaned_on_open(self, tmp_path):
        # A process that died between snapshot export and swap leaves a
        # .compact orphan; the next open must discard it (the live log is
        # the source of truth) and serve normally.
        log = tmp_path / "cache.log"
        with filled_tier(log, n=3):
            pass
        orphan = log.with_suffix(log.suffix + ".compact")
        orphan.write_bytes(_record_bytes(LOG_MAGIC) + b"stale snapshot\n")
        with DiskTier(log) as tier:
            assert not orphan.exists()
            assert len(tier.keys()) == 3

    def test_crash_mid_compact_swap_recovers_from_live_log(self, tmp_path):
        # Simulate dying *during* compact after the snapshot was written
        # but before os.replace: both files exist; reopening prefers the
        # log and drops the snapshot.
        log = tmp_path / "cache.log"
        with filled_tier(log, n=5) as tier:
            snapshot = log.with_suffix(log.suffix + ".compact")
            tier.export_snapshot(snapshot)
        assert snapshot.exists()
        with DiskTier(log) as reopened:
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(5)]
            assert not snapshot.exists()


class TestSingleWriterLock:
    @needs_flock
    def test_second_writer_fails_fast_with_pid(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log), pytest.raises(DiskTierLockedError) as excinfo:
            # flock is per open-file-description, so a second open in this
            # same process conflicts exactly as a second process would.
            DiskTier(log)
        assert str(os.getpid()) in str(excinfo.value)
        assert "single-writer" in str(excinfo.value)

    @needs_flock
    def test_lock_released_on_close(self, tmp_path):
        log = tmp_path / "cache.log"
        tier = filled_tier(log, n=2)
        tier.close()
        with DiskTier(log) as again:
            assert len(again.keys()) == 2

    @needs_flock
    def test_lock_released_when_open_fails(self, tmp_path):
        log = tmp_path / "cache.log"
        log.write_bytes(b"not a log at all\n")
        with pytest.raises(ValueError):
            DiskTier(log)
        # The failed open must not wedge the lock for the repair attempt.
        log.unlink()
        with DiskTier(log) as tier:
            tier.put("k", make_entry())

    @needs_flock
    def test_lock_survives_compaction(self, tmp_path):
        # Compaction closes and replaces the *log*; the lock lives on a
        # sibling file precisely so no second writer can slip in mid-swap.
        log = tmp_path / "cache.log"
        with filled_tier(log, n=3) as tier:
            tier.compact()
            with pytest.raises(DiskTierLockedError):
                DiskTier(log)

    @needs_flock
    @pytest.mark.slow
    def test_cross_process_writer_is_refused(self, tmp_path):
        log = tmp_path / "cache.log"
        with filled_tier(log, n=1):
            probe = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    "import sys\n"
                    "from repro.service import DiskTier, DiskTierLockedError\n"
                    f"try:\n    DiskTier({str(log)!r})\n"
                    "except DiskTierLockedError as e:\n"
                    "    print('LOCKED', e); sys.exit(0)\n"
                    "sys.exit(1)",
                ],
                env={**os.environ, "PYTHONPATH": "src"},
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert probe.returncode == 0, probe.stderr
            assert "LOCKED" in probe.stdout
            assert str(os.getpid()) in probe.stdout


class TestStrictLogEncoding:
    def test_records_are_standard_json(self, tmp_path):
        import math

        entry = make_entry()
        entry.canonical_plans[0] = entry.canonical_plans[0].__class__(
            **{
                **{
                    field: getattr(entry.canonical_plans[0], field)
                    for field in ("mask", "rows", "order", "table")
                },
                "cost": (math.inf,),
                "algorithm": entry.canonical_plans[0].algorithm,
            }
        )
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("inf-cost", entry)
        for line in log.read_bytes().splitlines():
            decoded = json.loads(line, parse_constant=lambda token: pytest.fail(
                f"non-standard JSON constant {token!r} in the log"
            ))
            assert isinstance(decoded, dict)
        with DiskTier(log) as tier:
            served = tier.get("inf-cost")
            assert served is not None
            assert served.canonical_plans[0].cost == (math.inf,)


class TestAutoCompaction:
    """The ``compact_ratio`` policy: compaction fires only at open and
    close, never loses a live record, and a crash mid-auto-compaction
    recovers through the same orphan-cleanup path as a manual one."""

    def churned_tier(self, path: Path, compact_ratio: float = 0.0) -> DiskTier:
        # 6 live keys over 16 log records: live ratio 6/16 = 0.375.
        tier = DiskTier(path, compact_ratio=compact_ratio)
        for i in range(6):
            tier.put(f"key-{i}", make_entry(generation=i))
        for generation in range(10):
            tier.put("key-0", make_entry(generation=0))
        return tier

    def test_close_compacts_churned_log(self, tmp_path):
        log = tmp_path / "cache.log"
        tier = self.churned_tier(log, compact_ratio=0.5)
        assert tier.live_ratio() == pytest.approx(6 / 16)
        dirty_bytes = tier.log_bytes()
        tier.close()
        assert log.stat().st_size < dirty_bytes
        with DiskTier(log) as reopened:
            # The compacted log is all-live: nothing left to rewrite.
            assert reopened.live_ratio() == 1.0
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]
            for i in range(6):
                assert reopened.get(f"key-{i}") == make_entry(generation=i)

    def test_open_compacts_a_dirty_log(self, tmp_path):
        log = tmp_path / "cache.log"
        # Written without a policy, so the churn survives the close...
        self.churned_tier(log).close()
        dirty_bytes = log.stat().st_size
        # ...and the next opener with a policy pays the rewrite up front.
        with DiskTier(log, compact_ratio=0.5) as reopened:
            assert reopened.live_ratio() == 1.0
            assert reopened.log_bytes() < dirty_bytes
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]

    def test_healthy_log_is_left_alone(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log, compact_ratio=0.5) as tier:
            for i in range(6):
                tier.put(f"key-{i}", make_entry(generation=i))
            clean_bytes = tier.log_bytes()
        assert log.stat().st_size == clean_bytes  # close rewrote nothing
        with DiskTier(log, compact_ratio=0.5) as reopened:
            assert reopened.log_bytes() == clean_bytes

    def test_torn_tail_then_auto_compact_at_open(self, tmp_path):
        # A crash tore the final append AND the log is mostly dead weight:
        # recovery must first drop the torn tail, then compact what's live.
        log = tmp_path / "cache.log"
        self.churned_tier(log).close()
        with open(log, "ab") as handle:
            handle.write(b'{"t": "put", "k": "torn", "en')
        with DiskTier(log, compact_ratio=0.5) as reopened:
            assert reopened.live_ratio() == 1.0
            assert reopened.get("torn") is None
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]

    def test_crash_mid_close_compaction_loses_nothing(self, tmp_path, monkeypatch):
        log = tmp_path / "cache.log"
        tier = self.churned_tier(log, compact_ratio=0.5)

        def failing_replace(src, dst):
            raise OSError(5, "injected replace failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            tier.close()  # the close-time compaction dies at the swap
        monkeypatch.undo()
        # The tier survived with open handles (compact()'s contract), the
        # retry compacts, and every live record is still there.
        assert tier.get("key-3") == make_entry(generation=3)
        tier.close()
        with DiskTier(log) as reopened:
            assert reopened.live_ratio() == 1.0
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]
        assert not list(tmp_path.glob("*.compact"))

    def test_orphaned_compact_file_from_dead_auto_compaction(self, tmp_path):
        # Process death after the snapshot was written but before the swap:
        # the orphan must not shadow the live log at the next open.
        log = tmp_path / "cache.log"
        self.churned_tier(log).close()
        orphan = log.with_suffix(log.suffix + ".compact")
        orphan.write_bytes(b"half-written snapshot")
        with DiskTier(log, compact_ratio=0.5) as reopened:
            assert sorted(reopened.keys()) == [f"key-{i}" for i in range(6)]
        assert not orphan.exists()

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_ratio_validation(self, tmp_path, bad):
        with pytest.raises(ValueError):
            DiskTier(tmp_path / "cache.log", compact_ratio=bad)
