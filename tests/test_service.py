"""The optimizer service layer: fingerprints, plan cache, batching, pools."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.cluster.executors import PersistentProcessPoolExecutor
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind, Query
from repro.service import (
    OptimizerService,
    PlanCache,
    canonicalize,
    fingerprint,
    remap_plan,
)
from repro.service.remap import invert, remap_mask
from tests.conftest import make_manual_query


def permute_query(query: Query, permutation: tuple[int, ...]) -> Query:
    """Relabel table numbers: table ``i`` becomes table ``permutation[i]``."""
    inverse = invert(permutation)
    tables = tuple(query.tables[inverse[new]] for new in range(query.n_tables))
    predicates = tuple(
        dataclasses.replace(
            predicate,
            left_table=permutation[predicate.left_table],
            right_table=permutation[predicate.right_table],
        )
        for predicate in query.predicates
    )
    return Query(tables=tables, predicates=predicates, name=f"{query.name}-relabeled")


def shuffled(n: int, seed: int) -> tuple[int, ...]:
    permutation = list(range(n))
    random.Random(seed).shuffle(permutation)
    return tuple(permutation)


class TestFingerprint:
    def test_invariant_under_relation_relabeling(self):
        settings = OptimizerSettings()
        for kind in (JoinGraphKind.STAR, JoinGraphKind.CHAIN, JoinGraphKind.CYCLE):
            query = SteinbrunnGenerator(21).query(7, kind)
            for seed in range(5):
                relabeled = permute_query(query, shuffled(query.n_tables, seed))
                assert fingerprint(query, settings) == fingerprint(relabeled, settings)

    def test_names_are_aliases(self):
        settings = OptimizerSettings()
        query = make_manual_query([100, 200, 300], [(0, 1, 0.1), (1, 2, 0.2)])
        renamed = Query(
            tables=tuple(
                dataclasses.replace(table, name=f"other{i}")
                for i, table in enumerate(query.tables)
            ),
            predicates=query.predicates,
            name="completely-different",
        )
        assert fingerprint(query, settings) == fingerprint(renamed, settings)

    def test_sensitive_to_statistics(self):
        settings = OptimizerSettings()
        query = make_manual_query([100, 200, 300], [(0, 1, 0.1), (1, 2, 0.2)])
        bigger = make_manual_query([100, 201, 300], [(0, 1, 0.1), (1, 2, 0.2)])
        resel = make_manual_query([100, 200, 300], [(0, 1, 0.1), (1, 2, 0.25)])
        rewired = make_manual_query([100, 200, 300], [(0, 1, 0.1), (0, 2, 0.2)])
        assert fingerprint(query, settings) != fingerprint(bigger, settings)
        assert fingerprint(query, settings) != fingerprint(resel, settings)
        assert fingerprint(query, settings) != fingerprint(rewired, settings)

    def test_sensitive_to_settings_and_workers(self):
        query = make_manual_query([100, 200, 300], [(0, 1, 0.1), (1, 2, 0.2)])
        linear = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        bushy = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        multi = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=2.0)
        assert fingerprint(query, linear) != fingerprint(query, bushy)
        assert fingerprint(query, linear) != fingerprint(query, multi)
        # 1 worker and 2 workers resolve to different partition counts on a
        # 3-table linear query (1 vs 2): distinct runs, distinct keys.
        assert fingerprint(query, linear, 1) != fingerprint(query, linear, 2)

    def test_equivalent_parallelism_shares_a_fingerprint(self):
        # Regression: the fingerprint must hash the *resolved* partition
        # count, not the raw worker request.  A 6-table linear query admits
        # at most 2^(6//2) = 8 partitions, so requests for 8, 9, and 12
        # workers all run identically and must share one cache key —
        # previously each produced a spurious miss and a duplicate entry.
        query = SteinbrunnGenerator(29).query(6)
        settings = OptimizerSettings()
        reference = fingerprint(query, settings, 8)
        assert fingerprint(query, settings, 9) == reference
        assert fingerprint(query, settings, 12) == reference
        assert fingerprint(query, settings, 4) != reference

    def test_invariant_with_partial_symmetry(self):
        # Regression: the individualization target must be picked by a
        # labeling-invariant key.  This query has two symmetric classes of
        # equal size ({0,1} and {3,5} by cardinality/position), so a
        # tie-break on original table numbers canonicalized two labelings
        # of it differently.
        settings = OptimizerSettings()
        query = make_manual_query(
            [500, 500, 200, 200, 100, 200],
            [(0, 3, 0.1), (1, 3, 0.1), (2, 3, 0.1), (3, 4, 0.1), (3, 5, 0.1)],
        )
        relabeled = permute_query(query, (2, 4, 3, 5, 0, 1))
        assert fingerprint(query, settings) == fingerprint(relabeled, settings)
        for seed in range(6):
            shuffled_query = permute_query(query, shuffled(6, seed))
            assert fingerprint(query, settings) == fingerprint(shuffled_query, settings)

    def test_symmetric_query_has_stable_fingerprint(self):
        # All tables identical, clique-connected: maximal symmetry exercises
        # the individualization search rather than plain refinement.
        settings = OptimizerSettings()
        query = make_manual_query(
            [500] * 5, [(i, j, 0.1) for i in range(5) for j in range(i + 1, 5)]
        )
        for seed in range(4):
            relabeled = permute_query(query, shuffled(5, seed))
            assert fingerprint(query, settings) == fingerprint(relabeled, settings)

    def test_numbering_is_a_permutation(self):
        query = SteinbrunnGenerator(22).query(6)
        canonical = canonicalize(query)
        assert sorted(canonical.numbering) == list(range(6))
        assert remap_mask(query.all_tables_mask, canonical.numbering) == (
            query.all_tables_mask
        )


class TestPlanCache:
    def test_hits_and_misses_counted(self):
        cache: PlanCache[str] = PlanCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", "plan-a")
        assert cache.get("a") == "plan-a"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache: PlanCache[int] = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_peek_does_not_touch_stats_or_recency(self):
        cache: PlanCache[int] = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("nope") is None
        assert cache.stats.lookups == 0
        cache.put("c", 3)  # "a" was NOT refreshed by peek -> evicted first
        assert "a" not in cache

    def test_rejects_silly_capacity(self):
        # capacity=0 is the supported cache-disabled mode (see
        # test_cache_boundaries.py); only negatives are nonsense.
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)


class TestOptimizerService:
    def test_miss_then_hit_same_plans(self, star6):
        service = OptimizerService(n_workers=4)
        first = service.optimize(star6)
        second = service.optimize(star6)
        assert not first.cached and second.cached
        assert second.fingerprint == first.fingerprint
        assert [plan.cost for plan in second.plans] == [
            plan.cost for plan in first.plans
        ]
        assert first.best.cost == best_plan(optimize_serial(star6)).cost

    def test_isomorphic_hit_is_remapped_to_request_numbering(self):
        query = SteinbrunnGenerator(23).query(8)
        relabeled = permute_query(query, shuffled(8, seed=9))
        service = OptimizerService(n_workers=4)
        service.optimize(query)
        served = service.optimize(relabeled)
        assert served.cached
        assert served.best.mask == relabeled.all_tables_mask
        # The remapped plan is optimal for the relabeled query; costs agree
        # with a from-scratch run up to float accumulation order.
        reference = best_plan(optimize_serial(relabeled))
        assert served.best.cost[0] == pytest.approx(reference.cost[0], rel=1e-9)
        assert sorted(served.best.join_order()) == list(range(8))

    def test_remapped_plan_tree_is_internally_consistent(self, star6):
        canonical = canonicalize(star6)
        plan = best_plan(optimize_serial(star6))
        remapped = remap_plan(plan, canonical.numbering)
        assert remapped.cost == plan.cost
        assert remapped.rows == plan.rows
        assert remapped.mask == star6.all_tables_mask
        back = remap_plan(remapped, invert(canonical.numbering))
        assert back == plan

    def test_equivalent_parallelism_shares_one_cache_entry(self):
        # workers=8, 9, and 12 all clamp to 8 partitions on a 6-table linear
        # query: one optimization, one resident entry, two cache hits.
        query = SteinbrunnGenerator(30).query(6)
        service = OptimizerService(n_workers=8)
        first = service.optimize(query)
        for workers in (9, 12):
            served = service.optimize(query, n_workers=workers)
            assert served.cached
            assert served.fingerprint == first.fingerprint
            assert served.n_partitions == first.n_partitions
        assert len(service.cache) == 1

    def test_cache_eviction_bounded(self):
        generator = SteinbrunnGenerator(24)
        service = OptimizerService(n_workers=2, cache_capacity=2)
        for __ in range(4):
            service.optimize(generator.query(4))
        assert len(service.cache) == 2
        assert service.cache.stats.evictions == 2

    def test_multi_objective_frontier_cached(self, star6, multi_settings):
        service = OptimizerService(n_workers=4, settings=multi_settings)
        first = service.optimize(star6)
        second = service.optimize(star6)
        assert second.cached
        assert {plan.cost for plan in second.plans} == {
            plan.cost for plan in first.plans
        }
        reference = optimize_serial(star6, multi_settings)
        assert {plan.cost for plan in first.plans} == {
            plan.cost for plan in reference.plans
        }


class TestOptimizeBatch:
    def test_batch_matches_serial_optimize(self, linear_settings, bushy_settings):
        generator = SteinbrunnGenerator(25)
        queries = [generator.query(6) for __ in range(3)]
        for settings in (linear_settings, bushy_settings):
            service = OptimizerService(n_workers=4, settings=settings)
            results = service.optimize_batch(queries)
            for query, result in zip(queries, results):
                assert result.best.cost == best_plan(
                    optimize_serial(query, settings)
                ).cost

    def test_duplicates_within_batch_computed_once(self):
        generator = SteinbrunnGenerator(26)
        query = generator.query(6)
        relabeled = permute_query(query, shuffled(6, seed=3))
        other = generator.query(6)
        service = OptimizerService(n_workers=4)
        results = service.optimize_batch([query, other, query, relabeled])
        assert [result.cached for result in results] == [False, False, True, True]
        assert results[2].best.cost == results[0].best.cost
        assert results[3].fingerprint == results[0].fingerprint
        # Duplicates served from the batch count as hits, so the operator's
        # hit rate agrees with the ``cached`` flags above.
        assert service.cache.stats.hits == 2
        assert service.cache.stats.misses == 2

    def test_batch_then_single_hits(self, chain5):
        service = OptimizerService(n_workers=4)
        service.optimize_batch([chain5])
        assert service.optimize(chain5).cached


class TestRunManyErrorHandling:
    def test_broken_process_pool_imported_eagerly(self):
        # Regression: both except clauses used to evaluate
        # ``concurrent.futures.process.BrokenProcessPool`` lazily inside the
        # handler; when that submodule was never imported, the handler
        # itself raised AttributeError and masked the real error.
        from concurrent.futures.process import BrokenProcessPool

        import repro.cluster.executors as executors_module
        import repro.service.service as service_module

        assert executors_module.BrokenProcessPool is BrokenProcessPool
        assert service_module.BrokenProcessPool is BrokenProcessPool

    def test_non_pool_errors_surface_unmasked(self):
        class ExplodingBatchExecutor:
            def submit_partitions(self, query, n_partitions, settings):
                class BadFuture:
                    def result(self):
                        raise ValueError("worker returned garbage")

                return [BadFuture() for __ in range(n_partitions)]

            def map_partitions(self, query, n_partitions, settings):
                raise AssertionError("fallback must not swallow the error")

        service = OptimizerService(n_workers=2, executor=ExplodingBatchExecutor())
        query = SteinbrunnGenerator(46).query(4)
        with pytest.raises(ValueError, match="worker returned garbage"):
            service.optimize(query)

    def test_broken_pool_falls_back_to_map_partitions(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.cluster.executors import SerialPartitionExecutor

        class BreakingThenServingExecutor:
            def __init__(self):
                self.closed = False
                self._serial = SerialPartitionExecutor()

            def submit_partitions(self, query, n_partitions, settings):
                class DeadFuture:
                    def result(self):
                        raise BrokenProcessPool("a worker was killed")

                return [DeadFuture() for __ in range(n_partitions)]

            def map_partitions(self, query, n_partitions, settings):
                return self._serial.map_partitions(query, n_partitions, settings)

            def close(self):
                self.closed = True

        executor = BreakingThenServingExecutor()
        service = OptimizerService(n_workers=2, executor=executor)
        query = SteinbrunnGenerator(47).query(5)
        result = service.optimize(query)
        assert executor.closed  # the broken pool was torn down for rebuild
        assert result.best.cost == best_plan(optimize_serial(query)).cost


class TestPersistentPool:
    def test_pool_reused_across_queries(self):
        generator = SteinbrunnGenerator(27)
        queries = [generator.query(6) for __ in range(3)]
        with PersistentProcessPoolExecutor(max_workers=2) as executor:
            service = OptimizerService(n_workers=4, executor=executor)
            for query in queries:
                result = service.optimize(query)
                assert result.best.cost == best_plan(optimize_serial(query)).cost
            assert executor.pools_started == 1
            assert executor.tasks_run == sum(
                service.optimize(query).n_partitions for query in queries
            )

    def test_batch_interleaves_onto_one_pool(self):
        generator = SteinbrunnGenerator(28)
        queries = [generator.query(6) for __ in range(4)]
        with PersistentProcessPoolExecutor(max_workers=2) as executor:
            with OptimizerService(n_workers=2, executor=executor) as service:
                results = service.optimize_batch(queries)
            assert executor.pools_started == 1
            for query, result in zip(queries, results):
                assert result.best.cost == best_plan(optimize_serial(query)).cost

    def test_map_partitions_matches_serial(self, star6, linear_settings):
        with PersistentProcessPoolExecutor(max_workers=2) as executor:
            pooled = executor.map_partitions(star6, 4, linear_settings)
        serial = [optimize_serial(star6, linear_settings)]  # reference flavor only
        assert [result.stats.partition_id for result in pooled] == [0, 1, 2, 3]
        best = min(
            (plan for result in pooled for plan in result.plans),
            key=lambda plan: plan.cost[0],
        )
        assert best.cost == best_plan(serial[0]).cost
