"""Experiment harness: scaling series, workloads, CLI plumbing."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ScalingPoint,
    ScalingSeries,
    mpq_scaling,
    run_mpq_point,
    run_sma_point,
    sma_scaling,
)
from repro.bench.workloads import SCALES, TABLE1_ALPHAS, worker_counts
from repro.bench import experiments
from repro.bench.__main__ import main as bench_main
from repro.config import OptimizerSettings
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def queries():
    return SteinbrunnGenerator(30).queries(2, 6)


@pytest.fixture
def settings():
    return OptimizerSettings()


class TestWorkerCounts:
    def test_powers_of_two(self):
        assert worker_counts(16) == [1, 2, 4, 8, 16]

    def test_non_power_limit(self):
        assert worker_counts(20) == [1, 2, 4, 8, 16]

    def test_custom_start(self):
        assert worker_counts(64, start=16) == [16, 32, 64]

    def test_empty_when_start_exceeds(self):
        assert worker_counts(4, start=8) == []


class TestScales:
    def test_registry_names(self):
        assert set(SCALES) == {"ci", "default", "paper"}
        for name, scale in SCALES.items():
            assert scale.name == name

    def test_paper_matches_paper_sizes(self):
        paper = SCALES["paper"]
        assert paper.fig2_linear == (20, 24)
        assert paper.fig2_bushy == (15, 18)
        assert paper.fig5_linear == (16, 18, 20)
        assert paper.table1_budgets_s == (10.0, 30.0, 60.0)
        assert paper.max_workers == 256

    def test_alphas_match_paper(self):
        assert TABLE1_ALPHAS == (1.01, 1.05, 1.25, 1.5, 2.0, 5.0, 10.0)

    def test_cluster_built_from_scale(self):
        cluster = SCALES["ci"].cluster()
        assert cluster.task_setup_s == SCALES["ci"].task_setup_s


class TestPoints:
    def test_mpq_point_fields(self, queries, settings):
        point = run_mpq_point(queries, 4, settings)
        assert point.workers == 4
        assert point.time_ms > 0
        assert point.worker_time_ms > 0
        assert point.memory_relations > 0
        assert point.network_bytes > 0

    def test_sma_point_fields(self, queries, settings):
        point = run_sma_point(queries, 4, settings)
        assert point.workers == 4
        assert point.time_ms > 0
        assert point.network_bytes > 0

    def test_point_row_formatting(self):
        point = ScalingPoint(8, 1.0, 0.5, 100, 2000)
        row = point.as_row()
        assert "8" in row and "2000" in row


class TestSeries:
    def test_mpq_series(self, queries, settings):
        series = mpq_scaling("test", queries, [1, 2, 4], settings)
        assert [p.workers for p in series.points] == [1, 2, 4]
        assert "test" in series.format()
        assert len(series.format().splitlines()) == 5

    def test_series_lookups(self, queries, settings):
        series = mpq_scaling("test", queries, [1, 2], settings)
        assert set(series.time_by_workers()) == {1, 2}
        assert set(series.network_by_workers()) == {1, 2}
        assert set(series.memory_by_workers()) == {1, 2}

    def test_sma_series(self, queries, settings):
        series = sma_scaling("sma", queries, [1, 2], settings)
        assert len(series.points) == 2

    def test_memory_monotone_decreasing(self, queries, settings):
        series = mpq_scaling("m", queries, [1, 2, 4, 8], settings)
        memories = [p.memory_relations for p in series.points]
        assert memories == sorted(memories, reverse=True)


class TestExperimentDrivers:
    """Smoke tests on a tiny injected scale (real ci scale is for benches)."""

    @pytest.fixture(autouse=True)
    def tiny_scale(self, monkeypatch):
        from repro.bench.workloads import ExperimentScale

        tiny = ExperimentScale(
            name="tiny",
            queries_per_point=1,
            fig1_linear=(4,),
            fig1_bushy=(4,),
            fig2_linear=(5,),
            fig2_bushy=(5,),
            fig3_sma=(4,),
            fig3_mpq=(4,),
            fig4_linear=(4,),
            fig4_bushy=(4,),
            fig5_linear=(5,),
            table1_tables=(4,),
            table1_budgets_s=(0.001, 1.0),
            speedup_linear=(5,),
            speedup_bushy=(5,),
            max_workers=4,
            max_sma_workers=4,
            task_setup_s=0.001,
            latency_s=1e-5,
        )
        monkeypatch.setitem(SCALES, "tiny", tiny)
        return tiny

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            experiments.fig1("nope")

    def test_fig1(self):
        result = experiments.fig1("tiny")
        assert "Figure 1" in result.format()
        labels = [s.label for s in result.series]
        assert any(label.startswith("MPQ") for label in labels)
        assert any(label.startswith("SMA") for label in labels)

    def test_fig2(self):
        result = experiments.fig2("tiny")
        assert len(result.series) == 2

    def test_fig3(self):
        result = experiments.fig3("tiny")
        kinds = {label.split("/")[-1].strip() for label in
                 (s.label for s in result.series)}
        assert kinds == {"chain", "star", "cycle"}

    def test_fig4(self):
        result = experiments.fig4("tiny")
        assert "alpha=10" in result.title

    def test_fig5(self):
        result = experiments.fig5("tiny")
        assert len(result.series) == 1

    def test_table1(self):
        result = experiments.table1("tiny")
        text = result.format()
        assert "Table 1" in text
        # Every grid cell is present.
        assert len(result.entries) == 2 * 1 * len(TABLE1_ALPHAS)
        # The generous budget is reachable by one worker.
        assert result.entries[(1.0, 4, 10.0)] == 1

    def test_speedups(self):
        result = experiments.speedups("tiny")
        assert len(result.rows) == 3  # linear + bushy + multi-objective
        for row in result.rows:
            assert row.speedup > 0
        assert "speedup" in result.format()


class TestCLI:
    class _StubResult:
        def format(self):
            return "stub report"

    def test_cli_runs_one_experiment(self, capsys, monkeypatch):
        from repro.bench import __main__ as cli

        monkeypatch.setitem(
            cli._EXPERIMENTS, "fig2", lambda scale: self._StubResult()
        )
        assert bench_main(["fig2", "--scale", "ci"]) == 0
        captured = capsys.readouterr()
        assert "stub report" in captured.out
        assert "fig2 completed" in captured.out

    def test_cli_all_runs_everything(self, capsys, monkeypatch):
        from repro.bench import __main__ as cli

        for name in list(cli._EXPERIMENTS):
            monkeypatch.setitem(
                cli._EXPERIMENTS, name, lambda scale: self._StubResult()
            )
        assert bench_main(["all", "--scale", "ci"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("stub report") == 7

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            bench_main(["nope"])

    def test_cli_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            bench_main(["fig1", "--scale", "huge"])
