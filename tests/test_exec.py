"""Execution engine: operators agree, plans are semantically equivalent."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import OptimizerSettings, PlanSpace
from repro.core.exhaustive import iter_bushy_plans, iter_leftdeep_plans
from repro.core.serial import best_plan, optimize_serial
from repro.cost.costmodel import CostModel
from repro.exec.data import generate_database
from repro.exec.engine import execute_plan
from repro.exec.validate import (
    empirical_cardinality,
    plans_equivalent,
    result_signature,
)
from repro.plans.operators import JoinAlgorithm
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind
from tests.conftest import make_manual_query


@pytest.fixture
def query():
    return SteinbrunnGenerator(70).query(4, JoinGraphKind.CHAIN)


@pytest.fixture
def database(query):
    return generate_database(query, seed=1, max_rows=25)


class TestDataGeneration:
    def test_row_counts_capped(self, query, database):
        for table_number, table in enumerate(query.tables):
            expected = min(table.cardinality, 25)
            assert len(database.table_rows(table_number)) == expected

    def test_values_within_domains(self, query, database):
        for table_number, table in enumerate(query.tables):
            for row in database.table_rows(table_number):
                for column in table.columns:
                    assert 0 <= row[column.name] < column.domain_size

    def test_deterministic(self, query):
        a = generate_database(query, seed=5)
        b = generate_database(query, seed=5)
        assert a.rows == b.rows

    def test_seed_changes_data(self, query):
        a = generate_database(query, seed=5)
        b = generate_database(query, seed=6)
        assert a.rows != b.rows

    def test_max_rows_validated(self, query):
        with pytest.raises(ValueError):
            generate_database(query, max_rows=0)

    def test_total_rows(self, query, database):
        assert database.total_rows == sum(
            len(database.table_rows(i)) for i in range(query.n_tables)
        )


class TestScanExecution:
    def test_scan_returns_all_rows(self, query, database):
        model = CostModel(query, OptimizerSettings())
        scan = model.scan_plans(2)[0]
        rows = execute_plan(scan, database)
        assert len(rows) == len(database.table_rows(2))
        for row in rows:
            for (table_number, _), __ in zip(row.keys(), row.values()):
                assert table_number == 2


class TestJoinOperatorsAgree:
    def test_all_algorithms_same_result(self):
        query = make_manual_query([40, 40], [(0, 1, 0.01)])
        database = generate_database(query, seed=3, max_rows=40)
        model = CostModel(query, OptimizerSettings())
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        signatures = []
        for candidate in model.join_candidates(left, right):
            plan = model.build_join(left, right, candidate)
            signatures.append(result_signature(execute_plan(plan, database)))
        assert len(signatures) == 3  # BNL, hash, sort-merge
        assert signatures[0] == signatures[1] == signatures[2]

    def test_cross_product_size(self):
        query = make_manual_query([10, 7])
        database = generate_database(query, seed=2, max_rows=50)
        model = CostModel(query, OptimizerSettings())
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        (candidate,) = model.join_candidates(left, right)
        assert candidate.algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP
        plan = model.build_join(left, right, candidate)
        assert len(execute_plan(plan, database)) == 70

    def test_equi_join_filters(self):
        query = make_manual_query([30, 30], [(0, 1, 0.01)])
        database = generate_database(query, seed=4, max_rows=30)
        model = CostModel(query, OptimizerSettings())
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        plan = model.build_join(left, right, model.join_candidates(left, right)[0])
        rows = execute_plan(plan, database)
        for row in rows:
            assert row[(0, "c0")] == row[(1, "c0")]


class TestPlanEquivalence:
    def test_all_leftdeep_plans_equivalent(self, query, database):
        model = CostModel(query, OptimizerSettings())
        plans = list(iter_leftdeep_plans(query, model))
        assert plans_equivalent(plans, database)

    def test_all_bushy_plans_equivalent(self, database, query):
        model = CostModel(query, OptimizerSettings(plan_space=PlanSpace.BUSHY))
        plans = list(iter_bushy_plans(query, model))
        assert plans_equivalent(plans[:300], database)

    def test_detects_inequivalence(self, query, database):
        """Sanity: the check actually fails for plans of different queries."""
        model = CostModel(query, OptimizerSettings())
        full = best_plan(optimize_serial(query, OptimizerSettings()))
        scan = model.scan_plans(0)[0]
        assert not plans_equivalent([full, scan], database)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        kind=st.sampled_from([JoinGraphKind.CHAIN, JoinGraphKind.STAR]),
    )
    def test_optimal_plans_of_both_spaces_agree(self, seed, kind):
        query = SteinbrunnGenerator(seed).query(4, kind)
        database = generate_database(query, seed=seed, max_rows=15)
        linear = best_plan(
            optimize_serial(query, OptimizerSettings(plan_space=PlanSpace.LINEAR))
        )
        bushy = best_plan(
            optimize_serial(query, OptimizerSettings(plan_space=PlanSpace.BUSHY))
        )
        assert plans_equivalent([linear, bushy], database)


class TestEmpiricalCardinality:
    def test_matches_execution(self, query, database):
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        assert empirical_cardinality(plan, database) == len(
            execute_plan(plan, database)
        )

    def test_selectivity_direction(self):
        """More selective predicates yield fewer rows on real data."""
        loose = make_manual_query([50, 50], [(0, 1, 1.0)])
        # Same schema but domain-100 'selective' semantics come from data:
        # build with small vs large domains by hand.
        from repro.query.schema import Column, Table
        from repro.query.predicates import JoinPredicate
        from repro.query.query import Query

        def query_with_domain(domain):
            tables = tuple(
                Table(f"T{i}", 50, (Column("c0", domain),)) for i in range(2)
            )
            predicate = JoinPredicate(0, "c0", 1, "c0", selectivity=1.0 / domain)
            return Query(tables=tables, predicates=(predicate,))

        small_domain = query_with_domain(2)
        large_domain = query_with_domain(500)
        results = []
        for q in (small_domain, large_domain):
            database = generate_database(q, seed=9, max_rows=50)
            model = CostModel(q, OptimizerSettings())
            left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
            plan = model.build_join(left, right, model.join_candidates(left, right)[0])
            results.append(empirical_cardinality(plan, database))
        assert results[0] > results[1]
