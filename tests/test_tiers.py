"""The disk tier, the memory-over-disk composite, and selective invalidation."""

from __future__ import annotations

import importlib.util
import json
import threading

import pytest

from repro.cluster.executors import SerialPartitionExecutor
from repro.cluster.simulator import SimulatedTiming
from repro.config import Backend, OptimizerSettings
from repro.core.worker import (
    registered_backends,
    register_backend,
    registry_generation,
)
from repro.plans.plan import ScanPlan
from repro.query.generator import make_chain_query, make_star_query
from repro.service import (
    CacheEntry,
    DiskTier,
    InvalidationPredicate,
    OptimizerService,
    Provenance,
    TieredPlanCache,
)
from repro.service.tiers import LOG_MAGIC, entry_from_wire, entry_to_wire


def make_entry(
    backend: str = "fastdp",
    generation: int = 1,
    created: float = 100.0,
    signature: str = "sig",
    with_provenance: bool = True,
) -> CacheEntry:
    """A small, fully-populated cache entry for tier plumbing tests."""
    plan = ScanPlan(mask=1, rows=1000.0, cost=(1000.0,), order=None, table=0)
    provenance = (
        Provenance(
            backend_used=backend,
            settings_signature=signature,
            registry_generation=generation,
            created_at_s=created,
            n_partitions=2,
            worker_stats={"plans_considered": 7.0},
        )
        if with_provenance
        else None
    )
    return CacheEntry(
        canonical_plans=[plan],
        n_partitions=2,
        simulated=SimulatedTiming(
            dispatch_s=0.001,
            workers_done_s=0.002,
            collect_s=0.0005,
            master_prune_s=0.0001,
            network_bytes=256,
            network_messages=4,
            worker_compute_s=[0.001, 0.0015],
        ),
        backend_used=backend,
        provenance=provenance,
    )


class TestEntryCodec:
    def test_round_trip_with_provenance(self):
        entry = make_entry()
        decoded = entry_from_wire(json.loads(json.dumps(entry_to_wire(entry))))
        assert decoded == entry
        assert decoded.provenance == entry.provenance

    def test_round_trip_without_provenance(self):
        entry = make_entry(with_provenance=False)
        decoded = entry_from_wire(json.loads(json.dumps(entry_to_wire(entry))))
        assert decoded == entry
        assert decoded.provenance is None


class TestDiskTier:
    def test_put_get_persists_across_reopen(self, tmp_path):
        log = tmp_path / "cache.log"
        entry_a, entry_b = make_entry(backend="legacy"), make_entry()
        with DiskTier(log) as tier:
            tier.put("a", entry_a)
            tier.put("b", entry_b)
        with DiskTier(log) as tier:
            assert tier.get("a") == entry_a
            assert tier.get("b") == entry_b
            assert len(tier) == 2
            # Counters are per-process, not persisted.
            assert tier.snapshot().hits == 2

    def test_supersession_serves_latest(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry(created=1.0))
            tier.put("a", make_entry(created=2.0))
            assert tier.get("a").provenance.created_at_s == 2.0
            assert len(tier) == 1
        with DiskTier(log) as tier:
            assert tier.get("a").provenance.created_at_s == 2.0

    def test_tombstone_survives_reopen(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry())
            tier.put("b", make_entry())
            assert tier.evict("a")
            assert not tier.evict("a")  # already gone
        with DiskTier(log) as tier:
            assert tier.get("a") is None
            assert "a" not in tier
            assert tier.get("b") is not None

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry())
            tier.put("b", make_entry())
        intact_size = log.stat().st_size
        with open(log, "ab") as handle:  # a crash mid-append
            handle.write(b'{"t":"put","k":"c","entry":{"plan')
        with DiskTier(log) as tier:
            assert sorted(tier.keys()) == ["a", "b"]
        assert log.stat().st_size == intact_size  # tail actually cut

    def test_complete_json_without_newline_is_torn(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry())
        with open(log, "ab") as handle:
            handle.write(b'{"t":"del","k":"a"}')  # valid JSON, no newline
        with DiskTier(log) as tier:
            assert "a" in tier  # the unterminated tombstone was dropped

    def test_rejects_foreign_files(self, tmp_path):
        not_json = tmp_path / "garbage.log"
        not_json.write_text("hello world\n")
        with pytest.raises(ValueError, match="not a plan-cache log"):
            DiskTier(not_json)
        wrong_format = tmp_path / "other.log"
        wrong_format.write_text('{"t":"header","format":"something-else"}\n')
        with pytest.raises(ValueError, match="not a plan-cache log"):
            DiskTier(wrong_format)

    def test_probe_and_peek_statistics(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as tier:
            assert tier.get("missing") is None
            assert tier.probe("missing") is None  # absence not counted
            tier.put("a", make_entry())
            assert tier.peek("a") is not None  # stat-free
            stats = tier.snapshot()
            assert (stats.hits, stats.misses) == (0, 1)
            tier.reclassify_miss_as_hit()
            stats = tier.snapshot()
            assert (stats.hits, stats.misses) == (1, 0)
            tier.reclassify_miss_as_hit()  # clamped: never negative
            assert tier.snapshot().misses == 0

    def test_export_snapshot_is_a_valid_log(self, tmp_path):
        log, snap = tmp_path / "cache.log", tmp_path / "snapshot.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry(backend="legacy"))
            tier.put("b", make_entry())
            tier.evict("a")
            assert tier.export_snapshot(snap) == 1
        with DiskTier(snap) as tier:  # a snapshot opens as a tier directly
            assert tier.keys() == ["b"]
            assert tier.get("b") is not None

    def test_import_snapshot_merge_semantics(self, tmp_path):
        snap = tmp_path / "snapshot.log"
        with DiskTier(tmp_path / "source.log") as source:
            source.put("a", make_entry(created=1.0))
            source.put("b", make_entry())
            source.export_snapshot(snap)
        with DiskTier(tmp_path / "dest.log") as dest:
            dest.put("a", make_entry(created=9.0))
            assert dest.import_snapshot(snap, overwrite=False) == 1  # only b
            assert dest.get("a").provenance.created_at_s == 9.0
            assert dest.import_snapshot(snap) == 2  # snapshot wins now
            assert dest.get("a").provenance.created_at_s == 1.0

    def test_import_rejects_foreign_snapshot(self, tmp_path):
        bogus = tmp_path / "bogus.snap"
        bogus.write_text('{"format":"nope"}\n')
        with DiskTier(tmp_path / "cache.log") as tier:
            with pytest.raises(ValueError, match="not a plan-cache snapshot"):
                tier.import_snapshot(bogus)

    def test_compact_reclaims_dead_records(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as tier:
            for version in range(10):
                tier.put("a", make_entry(created=float(version)))
            tier.put("b", make_entry())
            tier.evict("b")
            before = tier.log_bytes()
            reclaimed = tier.compact()
            assert reclaimed > 0
            assert tier.log_bytes() == before - reclaimed
            assert tier.keys() == ["a"]
            assert tier.get("a").provenance.created_at_s == 9.0

    def test_invalidate_by_predicate_persists(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("old-legacy", make_entry(backend="legacy", generation=1))
            tier.put("old-fastdp", make_entry(backend="fastdp", generation=1))
            tier.put("new-fastdp", make_entry(backend="fastdp", generation=5))
            doomed = tier.invalidate(
                InvalidationPredicate(backend="fastdp", below_generation=5)
            )
            assert doomed == ["old-fastdp"]
            assert tier.snapshot().evictions == 1
        with DiskTier(log) as tier:  # tombstones are durable
            assert sorted(tier.keys()) == ["new-fastdp", "old-legacy"]

    def test_provenance_index_resident(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as tier:
            tier.put("a", make_entry(signature="s1"))
            assert tier.provenance_of("a").settings_signature == "s1"
            assert {k: prov for k, prov, __ in tier.entries()}["a"].settings_signature == "s1"
            assert tier.provenance_of("nope") is None

    def test_clear_resets_everything(self, tmp_path):
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("a", make_entry())
            tier.get("missing")
            tier.clear()
            assert len(tier) == 0
            assert tier.snapshot().misses == 0
        assert json.loads(log.read_text()) == LOG_MAGIC  # header only


class TestTieredPlanCache:
    def test_rejects_unknown_write_policy(self):
        with pytest.raises(ValueError, match="write_policy"):
            TieredPlanCache(write_policy="write-sideways")

    def test_write_through_persists_at_put(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=1, disk=disk)
            cache.put("a", make_entry())
            assert "a" in disk  # durable before any eviction
            cache.put("b", make_entry())  # evicts a from memory
            stats = cache.snapshot()
            assert stats.disk_writes == 2
            assert stats.demotions == 1  # accounting only, no second write
            assert stats.evictions == 0  # a is still served (from disk)
            assert cache.get("a") is not None

    def test_write_back_persists_on_demotion_only(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(
                memory_capacity=1, disk=disk, write_policy="write-back"
            )
            cache.put("a", make_entry())
            assert "a" not in disk  # memory-resident only (crash would lose it)
            cache.put("b", make_entry())  # demotes a, writing it down
            assert "a" in disk
            assert "b" not in disk
            stats = cache.snapshot()
            assert (stats.demotions, stats.disk_writes) == (1, 1)

    def test_promote_on_hit(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            disk.put("a", make_entry())
            cache = TieredPlanCache(memory_capacity=4, disk=disk)
            assert cache.peek("a") is None  # memory-only by contract
            assert cache.get("a") is not None  # disk hit, promoted
            assert cache.peek("a") is not None
            stats = cache.snapshot()
            assert (stats.disk_hits, stats.promotions) == (1, 1)
            assert cache.get("a") is not None  # now a memory hit
            assert cache.snapshot().memory_hits == 1

    def test_promotion_disabled(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            disk.put("a", make_entry())
            cache = TieredPlanCache(
                memory_capacity=4, disk=disk, promote_on_hit=False
            )
            assert cache.get("a") is not None
            assert cache.peek("a") is None
            stats = cache.snapshot()
            assert (stats.disk_hits, stats.promotions) == (1, 0)

    def test_capacity_zero_serves_disk_only(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=0, disk=disk)
            cache.put("a", make_entry())
            for __ in range(3):
                assert cache.get("a") is not None
            stats = cache.snapshot()
            assert (stats.memory_hits, stats.disk_hits) == (0, 3)
            assert stats.promotions == 0

    def test_each_lookup_classified_exactly_once(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=4, disk=disk)
            cache.put("a", make_entry())
            cache.get("a")  # memory hit
            cache.memory.clear()
            cache.get("a")  # disk hit
            cache.get("missing")  # miss
            stats = cache.snapshot()
            assert (stats.memory_hits, stats.disk_hits, stats.misses) == (1, 1, 1)
            assert stats.hits == 2
            assert stats.lookups == 3
            assert stats.hit_rate == pytest.approx(2 / 3)
            # The wrapped tiers' own counters were never consulted or bumped
            # by composite traffic that the composite already classified.
            assert cache.memory.snapshot().hits == 0
            assert disk.snapshot().hits == 0

    def test_to_dict_is_cachestats_superset(self):
        from repro.service import CacheStats

        tiered = TieredPlanCache(memory_capacity=2).snapshot().to_dict()
        assert set(CacheStats().to_dict()) <= set(tiered)

    def test_evict_removes_from_both_tiers(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=4, disk=disk)
            cache.put("a", make_entry())
            assert cache.evict("a")
            assert cache.get("a") is None
            assert "a" not in disk
            assert not cache.evict("a")
            assert cache.snapshot().evictions == 1

    def test_invalidate_covers_memory_resident_write_back(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(
                memory_capacity=4, disk=disk, write_policy="write-back"
            )
            cache.put("hot", make_entry(backend="fastdp"))  # memory only
            disk.put("cold", make_entry(backend="fastdp"))
            disk.put("keep", make_entry(backend="legacy"))
            doomed = cache.invalidate(InvalidationPredicate(backend="fastdp"))
            assert doomed == ["cold", "hot"]
            assert cache.get("hot") is None
            assert cache.get("cold") is None
            assert cache.get("keep") is not None
            stats = cache.snapshot()
            assert stats.invalidated == 2

    def test_invalidate_counts_dual_resident_entry_once(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=4, disk=disk)
            cache.put("a", make_entry(backend="fastdp"))  # in both tiers
            doomed = cache.invalidate(InvalidationPredicate(backend="fastdp"))
            assert doomed == ["a"]
            assert cache.snapshot().invalidated == 1
            assert len(cache) == 0

    def test_provenance_free_entry_survives_conditional_invalidation(self):
        cache = TieredPlanCache(memory_capacity=4)
        cache.put("mystery", make_entry(with_provenance=False))
        assert cache.invalidate(InvalidationPredicate(backend="fastdp")) == []
        assert cache.get("mystery") is not None
        # Only the explicit match-everything predicate takes it out.
        assert cache.invalidate(InvalidationPredicate()) == ["mystery"]

    def test_len_is_union_of_tiers(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(
                memory_capacity=4, disk=disk, write_policy="write-back"
            )
            cache.put("memory-only", make_entry())
            disk.put("disk-only", make_entry())
            cache.put("both", make_entry())
            disk.put("both", make_entry())
            assert len(cache) == 3
            assert "memory-only" in cache and "disk-only" in cache

    def test_clear_and_reclassify_clamp(self, tmp_path):
        with DiskTier(tmp_path / "cache.log") as disk:
            cache = TieredPlanCache(memory_capacity=4, disk=disk)
            cache.put("a", make_entry())
            cache.get("missing")
            cache.clear()
            assert len(cache) == 0
            cache.reclassify_miss_as_hit()  # after clear: no miss to convert
            stats = cache.snapshot()
            assert stats.misses == 0  # clamped, not -1
            assert stats.memory_hits == 1


class CountingSerialExecutor(SerialPartitionExecutor):
    """Serial executor counting DP runs (``map_partitions`` invocations)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        return super().map_partitions(query, n_partitions, settings)


class TestSelectiveInvalidationAcceptance:
    """ISSUE acceptance: a registry-generation bump invalidates exactly the
    matching entries; everything else keeps serving without a DP run."""

    def test_backend_upgrade_retires_only_its_own_entries(self, tmp_path):
        executor = CountingSerialExecutor()
        cache = TieredPlanCache(
            memory_capacity=16, disk=DiskTier(tmp_path / "cache.log")
        )
        legacy = OptimizerSettings(backend=Backend.LEGACY)
        fastdp = OptimizerSettings(backend=Backend.FASTDP)
        with OptimizerService(
            n_workers=2, executor=executor, cache=cache
        ) as service:
            query_a, query_b = make_chain_query(5), make_star_query(5)
            service.optimize(query_a, legacy)
            service.optimize(query_b, fastdp)
            assert executor.calls == 2

            # Provenance was stamped with the concrete backend per entry.
            backends = sorted(
                provenance.backend_used
                for __, provenance, __kind in cache.disk.entries()
            )
            assert backends == ["fastdp", "legacy"]

            # "Upgrade" the fastdp core: re-registering bumps the registry
            # generation, making every earlier fastdp entry suspect.
            descriptor = next(
                d for d in registered_backends() if d.backend is Backend.FASTDP
            )
            register_backend(descriptor)
            new_generation = registry_generation()

            doomed = cache.invalidate(
                InvalidationPredicate(
                    backend="fastdp", below_generation=new_generation
                )
            )
            assert len(doomed) == 1

            # The fastdp entry re-optimizes (one fresh DP run) …
            result_b = service.optimize(query_b, fastdp)
            assert not result_b.cached
            assert executor.calls == 3
            # … while the untouched legacy entry still serves from cache.
            result_a = service.optimize(query_a, legacy)
            assert result_a.cached
            assert executor.calls == 3
            # And the re-created entry carries the new generation.
            refreshed = [
                provenance
                for __, provenance, __kind in cache.disk.entries()
                if provenance.backend_used == "fastdp"
            ]
            assert [p.registry_generation for p in refreshed] == [
                new_generation
            ]


class TestMidProcessRegistrationStability:
    """ISSUE acceptance: registering a backend mid-process must not disturb
    entries pinned to explicit backends — their resolved settings signatures
    (and hence fingerprints and provenance) are stable across the registry
    generation bump — while entries keyed on AUTO's *old* resolution become
    unreachable and can be retired selectively by signature + generation."""

    @pytest.mark.skipif(
        importlib.util.find_spec("numpy") is None,
        reason="the resolution change needs a second available backend (vecdp)",
    )
    def test_vecdp_registration_retires_only_auto_resolved_entries(
        self, tmp_path
    ):
        from repro.config import MULTI_OBJECTIVE
        from repro.core import worker
        from repro.service.fingerprint import settings_signature

        # Simulate a process in which vecdp has not registered yet: pop the
        # descriptor and advance the generation the way any registry change
        # would, so memoized signatures cannot leak the popped backend.
        saved = worker._BACKEND_REGISTRY.pop(Backend.VECDP)
        worker._REGISTRY_GENERATION += 1

        executor = CountingSerialExecutor()
        cache = TieredPlanCache(
            memory_capacity=16, disk=DiskTier(tmp_path / "cache.log")
        )
        pinned = OptimizerSettings(
            backend=Backend.FASTDP, objectives=MULTI_OBJECTIVE
        )
        auto = OptimizerSettings()
        try:
            with OptimizerService(
                n_workers=2, executor=executor, cache=cache
            ) as service:
                assert worker.resolve_backend(auto).backend is Backend.FASTDP
                pinned_signature = settings_signature(pinned)
                auto_signature_old = settings_signature(auto)
                assert "'fastdp'" in auto_signature_old

                query_a, query_b = make_chain_query(5), make_star_query(5)
                service.optimize(query_a, pinned)
                service.optimize(query_b, auto)
                assert executor.calls == 2

                # The mid-process registration: vecdp comes (back) online.
                register_backend(saved)
                new_generation = registry_generation()
                assert worker.resolve_backend(auto).backend is Backend.VECDP

                # Pinned signatures are bit-stable across the bump, so the
                # pinned entry keeps serving without a fresh DP run.
                assert settings_signature(pinned) == pinned_signature
                result_a = service.optimize(query_a, pinned)
                assert result_a.cached
                assert executor.calls == 2

                # AUTO's signature now embeds the new resolution: the old
                # entry is unreachable, and exactly it matches the retire
                # predicate (old resolved signature, below new generation).
                auto_signature_new = settings_signature(auto)
                assert auto_signature_new != auto_signature_old
                assert "'vecdp'" in auto_signature_new
                doomed = cache.invalidate(
                    InvalidationPredicate(
                        settings_signature=auto_signature_old,
                        below_generation=new_generation,
                    )
                )
                assert len(doomed) == 1

                # Re-optimizing under AUTO runs the new backend and stamps
                # provenance with the new resolution, the new generation,
                # and a complete aggregated WorkerStats summary.
                result_b = service.optimize(query_b, auto)
                assert not result_b.cached
                assert executor.calls == 3
                assert result_b.backend_used == "vecdp"
                refreshed = [
                    provenance
                    for __, provenance, __kind in cache.disk.entries()
                    if provenance.settings_signature == auto_signature_new
                ]
                assert len(refreshed) == 1
                assert refreshed[0].backend_used == "vecdp"
                assert refreshed[0].registry_generation == new_generation
                summary = refreshed[0].worker_stats
                assert summary["result_plans"] >= 1
                assert summary["plans_considered"] > 0
                assert summary["wall_time_s"] >= 0.0
                # The pinned entry's provenance never moved.
                stale_free = [
                    provenance
                    for __, provenance, __kind in cache.disk.entries()
                    if provenance.settings_signature == pinned_signature
                ]
                assert [p.backend_used for p in stale_free] == ["fastdp"]
        finally:
            if Backend.VECDP not in worker._BACKEND_REGISTRY:
                register_backend(saved)
