"""Execution back-ends: serial, thread pool, process pool."""

from __future__ import annotations

import pytest

from repro.cluster.executors import (
    ProcessPoolPartitionExecutor,
    SerialPartitionExecutor,
    ThreadPoolPartitionExecutor,
)
from repro.config import OptimizerSettings
from repro.core.master import optimize_parallel
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def query():
    return SteinbrunnGenerator(4).query(6)


@pytest.fixture
def settings():
    return OptimizerSettings()


class TestSerialExecutor:
    def test_runs_all_partitions(self, query, settings):
        results = SerialPartitionExecutor().map_partitions(query, 4, settings)
        assert [r.stats.partition_id for r in results] == [0, 1, 2, 3]


class TestThreadExecutor:
    def test_matches_serial(self, query, settings):
        serial = SerialPartitionExecutor().map_partitions(query, 4, settings)
        threaded = ThreadPoolPartitionExecutor(max_workers=4).map_partitions(
            query, 4, settings
        )
        for a, b in zip(serial, threaded):
            assert a.plans[0].cost == b.plans[0].cost
            assert a.stats.partition_id == b.stats.partition_id


class TestProcessExecutor:
    def test_matches_serial(self, query, settings):
        serial = SerialPartitionExecutor().map_partitions(query, 2, settings)
        processed = ProcessPoolPartitionExecutor(max_workers=2).map_partitions(
            query, 2, settings
        )
        for a, b in zip(serial, processed):
            assert a.plans[0].cost == b.plans[0].cost
            assert a.stats.splits_considered == b.stats.splits_considered

    def test_through_master(self, query, settings):
        inline = optimize_parallel(query, 2, settings)
        pooled = optimize_parallel(
            query, 2, settings, executor=ProcessPoolPartitionExecutor(max_workers=2)
        )
        assert pooled.best.cost == inline.best.cost
