"""Interesting orders: sort-merge order reuse across joins."""

from __future__ import annotations

import pytest

from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.plans.operators import JoinAlgorithm
from repro.plans.plan import JoinPlan
from repro.query.generator import SteinbrunnGenerator
from tests.conftest import make_manual_query


def count_sort_merges(plan):
    if not isinstance(plan, JoinPlan):
        return 0
    own = 1 if plan.algorithm is JoinAlgorithm.SORT_MERGE else 0
    return own + count_sort_merges(plan.left) + count_sort_merges(plan.right)


class TestOrdersNeverHurt:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_orders_on_at_most_orders_off(self, seed):
        query = SteinbrunnGenerator(seed).query(6)
        off = best_plan(optimize_serial(query, OptimizerSettings()))
        on = best_plan(
            optimize_serial(query, OptimizerSettings(consider_orders=True))
        )
        assert on.cost[0] <= off.cost[0] * (1 + 1e-9)

    def test_orders_track_more_plans(self):
        query = SteinbrunnGenerator(6).query(6)
        off = optimize_serial(query, OptimizerSettings())
        on = optimize_serial(query, OptimizerSettings(consider_orders=True))
        assert on.stats.stored_plans >= off.stats.stored_plans


class TestOrderReuseScenario:
    def test_shared_sort_key_benefits(self):
        """Two joins over the same column: sorting once must pay off.

        T0 joins T1 and T2 on the *same* column T0.c0, so a sort-merge join
        producing output sorted on T0.c0 makes the second sort-merge free of
        its sort term.  With orders on, the optimizer may keep the costlier
        sorted intermediate plan; the final cost must never exceed orders-off.
        """
        query = make_manual_query(
            [5000, 4000, 3000],
            [(0, 1, 0.001), (0, 2, 0.001)],
        )
        off = best_plan(optimize_serial(query, OptimizerSettings()))
        on = best_plan(
            optimize_serial(query, OptimizerSettings(consider_orders=True))
        )
        assert on.cost[0] <= off.cost[0]

    def test_sorted_output_recorded(self):
        query = make_manual_query([5000, 4000], [(0, 1, 0.001)])
        result = optimize_serial(query, OptimizerSettings(consider_orders=True))
        orders = {plan.order for plan in result.plans}
        # The returned best plan may or may not be sorted, but every stored
        # sort-merge plan must carry its output order.
        for plan in result.plans:
            if isinstance(plan, JoinPlan) and plan.algorithm is JoinAlgorithm.SORT_MERGE:
                assert plan.order is not None
