"""Grand-tour integration tests: every optimizer flavour on one query.

These tests cross plan spaces, objectives, interesting orders, parametric
mode, and parallelism degrees, asserting the cross-cutting invariants:
serial/parallel agreement, determinism, and result-object consistency.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms.mpq import optimize_mpq
from repro.algorithms.pqo import optimize_parametric
from repro.cluster.executors import ProcessPoolPartitionExecutor
from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.master import optimize_parallel
from repro.core.serial import optimize_serial
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture(scope="module")
def query():
    return SteinbrunnGenerator(99).query(6)


def flavour_id(settings: OptimizerSettings) -> str:
    bits = [settings.plan_space.value]
    bits.append("x".join(o.value for o in settings.objectives))
    if settings.consider_orders:
        bits.append("orders")
    if settings.parametric:
        bits.append("parametric")
    if settings.alpha != 1.0:
        bits.append(f"a{settings.alpha:g}")
    return "-".join(bits)


FLAVOURS = [
    OptimizerSettings(),
    OptimizerSettings(plan_space=PlanSpace.BUSHY),
    OptimizerSettings(consider_orders=True),
    OptimizerSettings(plan_space=PlanSpace.BUSHY, consider_orders=True),
    OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0),
    OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=2.0),
    OptimizerSettings(
        plan_space=PlanSpace.BUSHY, objectives=MULTI_OBJECTIVE, alpha=1.0
    ),
    OptimizerSettings(
        objectives=MULTI_OBJECTIVE, alpha=1.0, consider_orders=True
    ),
    OptimizerSettings(objectives=PARAMETRIC_OBJECTIVES, parametric=True),
    OptimizerSettings(
        plan_space=PlanSpace.BUSHY,
        objectives=PARAMETRIC_OBJECTIVES,
        parametric=True,
    ),
]


@pytest.mark.parametrize("settings", FLAVOURS, ids=flavour_id)
class TestEveryFlavour:
    def test_parallel_matches_serial_best(self, query, settings):
        serial = optimize_serial(query, settings)
        parallel = optimize_parallel(query, 4, settings)
        serial_best = min(plan.cost[0] for plan in serial.plans)
        parallel_best = min(plan.cost[0] for plan in parallel.plans)
        assert parallel_best == pytest.approx(serial_best)

    def test_deterministic(self, query, settings):
        first = optimize_parallel(query, 4, settings)
        second = optimize_parallel(query, 4, settings)
        assert [plan.cost for plan in first.plans] == [
            plan.cost for plan in second.plans
        ]

    def test_plans_cover_full_query(self, query, settings):
        result = optimize_parallel(query, 4, settings)
        for plan in result.plans:
            assert plan.mask == query.all_tables_mask

    def test_left_deep_when_linear(self, query, settings):
        result = optimize_parallel(query, 4, settings)
        if settings.plan_space is PlanSpace.LINEAR:
            assert all(plan.is_left_deep() for plan in result.plans)

    def test_cost_vector_lengths(self, query, settings):
        result = optimize_parallel(query, 4, settings)
        for plan in result.plans:
            assert len(plan.cost) == len(settings.objectives)

    def test_plans_pickle(self, query, settings):
        """Plans cross process boundaries in shared-nothing deployments."""
        result = optimize_parallel(query, 2, settings)
        clone = pickle.loads(pickle.dumps(result.plans))
        assert [plan.cost for plan in clone] == [
            plan.cost for plan in result.plans
        ]


class TestProcessPoolAcrossFlavours:
    """The real multiprocessing path with non-trivial result payloads."""

    def test_multi_objective_through_pool(self, query):
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0)
        inline = optimize_parallel(query, 2, settings)
        pooled = optimize_parallel(
            query, 2, settings, executor=ProcessPoolPartitionExecutor(max_workers=2)
        )
        assert {plan.cost for plan in pooled.plans} == {
            plan.cost for plan in inline.plans
        }

    def test_parametric_through_pool(self, query):
        inline = optimize_parametric(query, 2)
        pooled = optimize_parametric(
            query, 2, executor=ProcessPoolPartitionExecutor(max_workers=2)
        )
        for theta in (0.0, 0.5, 1.0):
            assert pooled.cost_at(theta) == pytest.approx(inline.cost_at(theta))


class TestReportConsistency:
    def test_simulated_components_consistent(self, query):
        report = optimize_mpq(query, 4)
        timing = report.simulated
        assert timing.total_s >= timing.workers_done_s
        assert timing.workers_done_s >= timing.dispatch_s
        assert timing.network_messages == 2 * report.n_partitions
        assert report.simulated_time_ms == pytest.approx(timing.total_s * 1e3)

    def test_result_plans_counted(self, query):
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0)
        result = optimize_parallel(query, 4, settings)
        for partition in result.partition_results:
            assert partition.stats.result_plans == len(partition.plans)
