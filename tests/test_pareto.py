"""Pareto dominance, approximate dominance, frontier filtering."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cost.pareto import (
    alpha_dominates,
    dominates,
    pareto_filter,
    strictly_dominates,
)

vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=2, max_size=2
).map(tuple)


class TestDominates:
    def test_better_everywhere(self):
        assert dominates((1.0, 2.0), (3.0, 4.0))

    def test_equal_dominates(self):
        assert dominates((1.0, 2.0), (1.0, 2.0))

    def test_incomparable(self):
        assert not dominates((1.0, 5.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 5.0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_strict(self):
        assert strictly_dominates((1.0, 2.0), (1.0, 3.0))
        assert not strictly_dominates((1.0, 2.0), (1.0, 2.0))

    @given(vectors, vectors)
    def test_antisymmetry_unless_equal(self, a, b):
        if dominates(a, b) and dominates(b, a):
            assert a == b


class TestAlphaDominates:
    def test_alpha_one_is_exact(self):
        assert alpha_dominates((1.0, 2.0), (1.0, 2.0), 1.0)
        assert not alpha_dominates((1.1, 2.0), (1.0, 2.0), 1.0)

    def test_alpha_relaxes(self):
        assert alpha_dominates((1.1, 2.0), (1.0, 2.0), 1.2)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            alpha_dominates((1.0,), (1.0,), 0.5)

    @given(vectors, vectors, st.floats(min_value=1.0, max_value=10.0))
    def test_exact_implies_alpha(self, a, b, alpha):
        if dominates(a, b):
            assert alpha_dominates(a, b, alpha)


class TestParetoFilter:
    def test_single(self):
        assert pareto_filter([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_dominated_removed(self):
        frontier = pareto_filter([(1.0, 2.0), (2.0, 3.0)])
        assert frontier == [(1.0, 2.0)]

    def test_incomparable_kept(self):
        frontier = pareto_filter([(1.0, 5.0), (5.0, 1.0)])
        assert len(frontier) == 2

    def test_duplicates_collapse(self):
        frontier = pareto_filter([(1.0, 2.0), (1.0, 2.0)])
        assert frontier == [(1.0, 2.0)]

    def test_order_independent_content(self):
        points = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        forward = set(pareto_filter(points))
        backward = set(pareto_filter(list(reversed(points))))
        assert forward == backward == {(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)}

    @given(st.lists(vectors, min_size=1, max_size=30))
    def test_frontier_is_antichain(self, points):
        frontier = pareto_filter(points)
        for a in frontier:
            for b in frontier:
                if a != b:
                    assert not dominates(a, b)

    @given(st.lists(vectors, min_size=1, max_size=30))
    def test_every_point_dominated_by_frontier(self, points):
        frontier = pareto_filter(points)
        for point in points:
            assert any(dominates(kept, point) for kept in frontier)
