"""Property-based fingerprint/remap coverage over seeded random queries.

The example-based tests in ``test_service.py`` pin specific regressions;
these sweeps assert the *properties* the serving layer is built on, over a
few hundred seeded random queries spanning every join-graph topology:

* fingerprint invariance under relation relabeling, predicate reordering,
  and predicate endpoint swaps (none of which change query semantics);
* worker-count coherence: two requested parallelism levels share a
  fingerprint exactly when they resolve to the same partition count;
* remap round-trips: relabeling a plan through a permutation and back is
  the identity, canonical numbering is a true permutation, and serving an
  isomorphic request yields plans in the requester's own numbering.

Everything is seeded — a failure reproduces with the printed seed.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    OptimizerSettings,
)
from repro.core.constraints import usable_partitions
from repro.core.serial import optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind, Query
from repro.service import OptimizerService, canonicalize, fingerprint
from repro.service.remap import invert, remap_mask, remap_plan
from tests.test_service import permute_query, shuffled

KINDS = (
    JoinGraphKind.STAR,
    JoinGraphKind.CHAIN,
    JoinGraphKind.CYCLE,
    JoinGraphKind.CLIQUE,
)

SETTINGS_VARIANTS = (
    OptimizerSettings(),
    OptimizerSettings(consider_orders=True),
    OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=2.0),
    OptimizerSettings(objectives=PARAMETRIC_OBJECTIVES, parametric=True),
)


def random_queries(count: int, seed: int, tables=(3, 8)):
    """``count`` seeded random queries cycling topologies and sizes."""
    rng = random.Random(seed)
    generator = SteinbrunnGenerator(seed)
    return [
        generator.query(rng.randint(*tables), KINDS[index % len(KINDS)])
        for index in range(count)
    ]


def reorder_predicates(query: Query, seed: int) -> Query:
    """Shuffle predicate order and swap random predicates' endpoints."""
    rng = random.Random(seed)
    predicates = list(query.predicates)
    rng.shuffle(predicates)
    swapped = tuple(
        dataclasses.replace(
            predicate,
            left_table=predicate.right_table,
            left_column=predicate.right_column,
            right_table=predicate.left_table,
            right_column=predicate.left_column,
        )
        if rng.random() < 0.5
        else predicate
        for predicate in predicates
    )
    return Query(tables=query.tables, predicates=swapped, name=query.name)


class TestFingerprintInvariance:
    def test_invariant_under_relabeling_200_queries(self):
        # The headline sweep: ~200 queries x several permutations each.
        settings = OptimizerSettings()
        for index, query in enumerate(random_queries(200, seed=101)):
            reference = fingerprint(query, settings)
            for permutation_seed in range(3):
                relabeled = permute_query(
                    query, shuffled(query.n_tables, seed=permutation_seed)
                )
                assert fingerprint(relabeled, settings) == reference, (
                    f"query #{index} ({query.name}) fingerprint changed under "
                    f"permutation seed {permutation_seed}"
                )

    def test_invariant_under_predicate_rewrites(self):
        settings = OptimizerSettings()
        for index, query in enumerate(random_queries(100, seed=102)):
            reference = fingerprint(query, settings)
            for rewrite_seed in range(3):
                rewritten = reorder_predicates(query, seed=rewrite_seed)
                assert fingerprint(rewritten, settings) == reference, (
                    f"query #{index} fingerprint changed under predicate "
                    f"rewrite seed {rewrite_seed}"
                )

    def test_invariant_under_combined_rewrites_across_settings(self):
        # Permute AND rewrite predicates, under every settings variant.
        for index, query in enumerate(random_queries(48, seed=103)):
            mangled = reorder_predicates(
                permute_query(query, shuffled(query.n_tables, seed=index)),
                seed=index,
            )
            for settings in SETTINGS_VARIANTS:
                assert fingerprint(query, settings) == fingerprint(
                    mangled, settings
                ), f"query #{index} under {settings}"

    def test_distinct_settings_never_collide(self):
        for query in random_queries(24, seed=104):
            keys = {
                fingerprint(query, settings) for settings in SETTINGS_VARIANTS
            }
            assert len(keys) == len(SETTINGS_VARIANTS)

    def test_worker_counts_share_keys_iff_partitions_agree(self):
        settings = OptimizerSettings()
        rng = random.Random(105)
        for index, query in enumerate(random_queries(100, seed=105)):
            workers_a = rng.randint(1, 64)
            workers_b = rng.randint(1, 64)
            partitions_a = usable_partitions(
                query.n_tables, workers_a, settings.plan_space
            )
            partitions_b = usable_partitions(
                query.n_tables, workers_b, settings.plan_space
            )
            key_a = fingerprint(query, settings, workers_a)
            key_b = fingerprint(query, settings, workers_b)
            assert (key_a == key_b) == (partitions_a == partitions_b), (
                f"query #{index}: workers {workers_a} vs {workers_b} resolved "
                f"to partitions {partitions_a} vs {partitions_b}"
            )

    def test_memoized_canonicalization_matches_fresh(self):
        # The hot-path memo must be an invisible optimization: a fresh
        # equal-content query object canonicalizes to the identical form.
        for query in random_queries(24, seed=106):
            twin = Query(
                tables=query.tables, predicates=query.predicates, name="twin"
            )
            first = canonicalize(query)
            second = canonicalize(twin)
            assert first.encoding == second.encoding
            assert first.numbering == second.numbering


class TestCanonicalNumbering:
    def test_numbering_is_a_permutation(self):
        for query in random_queries(100, seed=107):
            numbering = canonicalize(query).numbering
            assert sorted(numbering) == list(range(query.n_tables))
            assert invert(invert(numbering)) == numbering

    def test_isomorphic_queries_map_to_one_canonical_query(self):
        # numbering(q) and numbering(permuted q) compose to the permutation.
        for index, query in enumerate(random_queries(48, seed=108)):
            permutation = shuffled(query.n_tables, seed=index)
            relabeled = permute_query(query, permutation)
            numbering = canonicalize(query).numbering
            relabeled_numbering = canonicalize(relabeled).numbering
            for original in range(query.n_tables):
                assert (
                    relabeled_numbering[permutation[original]]
                    == numbering[original]
                )


class TestRemapRoundTrips:
    def test_mask_round_trip_under_random_permutations(self):
        rng = random.Random(109)
        for n_tables in range(1, 12):
            for __ in range(20):
                permutation = shuffled(n_tables, seed=rng.randint(0, 10_000))
                mask = rng.randint(0, (1 << n_tables) - 1)
                there = remap_mask(mask, permutation)
                assert remap_mask(there, invert(permutation)) == mask
                assert bin(there).count("1") == bin(mask).count("1")

    def test_plan_round_trip_on_real_frontiers(self):
        # Real DP output (multi-objective, so frontiers have several plans):
        # remapping there and back must reproduce the identical plan values.
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE)
        for index, query in enumerate(random_queries(24, seed=110, tables=(3, 6))):
            plans = optimize_serial(query, settings).plans
            assert plans
            permutation = shuffled(query.n_tables, seed=index)
            for plan in plans:
                there = remap_plan(plan, permutation)
                assert remap_plan(there, invert(permutation)) == plan
                assert there.cost == plan.cost

    def test_service_serves_permuted_requests_in_their_numbering(self):
        # End to end: optimize a query, then request a permuted copy; the
        # hit must come back renumbered for the permuted query.
        with OptimizerService(n_workers=4) as service:
            for index, query in enumerate(
                random_queries(16, seed=111, tables=(4, 6))
            ):
                original = service.optimize(query)
                permuted = permute_query(
                    query, shuffled(query.n_tables, seed=index)
                )
                served = service.optimize(permuted)
                assert served.cached
                assert served.fingerprint == original.fingerprint
                assert served.best.mask == permuted.all_tables_mask
                assert served.best.cost[0] == pytest.approx(
                    original.best.cost[0], rel=1e-9
                )
