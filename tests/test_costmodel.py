"""Cost model: operator applicability, candidate costing, plan building."""

from __future__ import annotations

import pytest

from repro.config import MULTI_OBJECTIVE, OptimizerSettings
from repro.cost.costmodel import CostModel
from repro.plans.operators import JoinAlgorithm
from repro.plans.orders import SortOrder
from tests.conftest import make_manual_query


@pytest.fixture
def query():
    return make_manual_query([100, 200, 300], [(0, 1, 0.01)])


@pytest.fixture
def model(query):
    return CostModel(query, OptimizerSettings())


class TestScanPlans:
    def test_one_scan_per_table(self, model):
        assert len(model.scan_plans(0)) == 1

    def test_scan_fields(self, model):
        scan = model.scan_plans(1)[0]
        assert scan.mask == 0b10
        assert scan.rows == 200.0
        assert scan.cost == (200.0,)
        assert scan.order is None

    def test_multi_objective_scan_cost(self, query):
        model = CostModel(
            query, OptimizerSettings(objectives=MULTI_OBJECTIVE)
        )
        scan = model.scan_plans(0)[0]
        assert scan.cost == (100.0, 1.0)


class TestCandidateApplicability:
    def test_equi_join_gets_all_operators(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        algorithms = {c.algorithm for c in model.join_candidates(left, right)}
        assert algorithms == {
            JoinAlgorithm.BLOCK_NESTED_LOOP,
            JoinAlgorithm.HASH,
            JoinAlgorithm.SORT_MERGE,
        }

    def test_cross_product_only_nested_loop(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(2)[0]
        algorithms = {c.algorithm for c in model.join_candidates(left, right)}
        assert algorithms == {JoinAlgorithm.BLOCK_NESTED_LOOP}

    def test_nested_loop_only_setting(self, query):
        model = CostModel(query, OptimizerSettings(use_all_join_algorithms=False))
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        algorithms = {c.algorithm for c in model.join_candidates(left, right)}
        assert algorithms == {JoinAlgorithm.BLOCK_NESTED_LOOP}


class TestCandidateCosting:
    def test_rows_use_selectivity(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        for candidate in model.join_candidates(left, right):
            assert candidate.rows == pytest.approx(100 * 200 * 0.01)

    def test_cost_includes_children(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        nl = next(
            c
            for c in model.join_candidates(left, right)
            if c.algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP
        )
        assert nl.cost[0] == pytest.approx(100 + 200 + 100 * 200)

    def test_build_join_consistent(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        candidate = model.join_candidates(left, right)[0]
        plan = model.build_join(left, right, candidate)
        assert plan.mask == 0b11
        assert plan.cost == candidate.cost
        assert plan.rows == candidate.rows
        assert plan.algorithm == candidate.algorithm


class TestInterestingOrderProduction:
    def test_orders_off_no_order(self, model):
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        for candidate in model.join_candidates(left, right):
            assert candidate.order is None

    def test_sort_merge_emits_order_when_enabled(self, query):
        model = CostModel(query, OptimizerSettings(consider_orders=True))
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        sm = next(
            c
            for c in model.join_candidates(left, right)
            if c.algorithm is JoinAlgorithm.SORT_MERGE
        )
        assert sm.order == SortOrder(0, "c0")

    def test_order_follows_outer_operand(self, query):
        model = CostModel(query, OptimizerSettings(consider_orders=True))
        left, right = model.scan_plans(1)[0], model.scan_plans(0)[0]
        sm = next(
            c
            for c in model.join_candidates(left, right)
            if c.algorithm is JoinAlgorithm.SORT_MERGE
        )
        assert sm.order == SortOrder(1, "c0")

    def test_presorted_input_cheaper(self, query):
        model = CostModel(query, OptimizerSettings(consider_orders=True))
        scan0, scan1 = model.scan_plans(0)[0], model.scan_plans(1)[0]
        sm = next(
            c
            for c in model.join_candidates(scan0, scan1)
            if c.algorithm is JoinAlgorithm.SORT_MERGE
        )
        sorted_plan = model.build_join(scan0, scan1, sm)
        # Re-join the sorted result with an unsorted scan over the same key
        # is not expressible here; instead verify the sort flags recorded.
        assert sm.sort_left and sm.sort_right

    def test_multi_objective_cost_length(self, query):
        model = CostModel(query, OptimizerSettings(objectives=MULTI_OBJECTIVE))
        left, right = model.scan_plans(0)[0], model.scan_plans(1)[0]
        for candidate in model.join_candidates(left, right):
            assert len(candidate.cost) == 2
