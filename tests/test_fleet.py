"""The shard-fleet supervisor: restarts, live rebalancing, hedging.

Four layers, cheapest first:

* **ring owners** — :meth:`ConsistentHashRing.owners` (the hedge target and
  migration destination) is the route plus distinct clockwise successors;
* **snapshot codec and op** — the ``snapshot`` control frames
  (keys/export/import/evict) move cache entries between in-process
  :class:`ShardServer` instances losslessly, refuse imports while
  draining, and reject malformed snapshots with typed errors;
* **supervision** — killing a shard process gets it restarted by the
  monitor with a fresh pid, re-admitted by a connected router through the
  breaker's half-open probe, and (with a cache dir) warm again from its
  own disk log;
* **live rebalancing** — the acceptance criterion: a 64-client replay over
  a 3-shard fleet, with a 4th shard added mid-replay, pays exactly one DP
  run per unique fingerprint — the moved keys' entries were shipped to the
  new owner before any router learned the new ring — and returns
  bit-identical plans.  Failures mid-shipment (the target dying) roll the
  whole rebalance back: routing unchanged, no entry lost, no client hung.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_threaded,
    unique_fingerprints,
)
from repro.cluster.network import recv_frame, send_frame
from repro.cluster.serialization import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    snapshot_from_wire,
    snapshot_to_wire,
)
from repro.query.generator import SteinbrunnGenerator
from repro.query.io import query_to_dict
from repro.service import (
    ConsistentHashRing,
    FleetError,
    FleetRebalanceError,
    NetworkOptimizerGateway,
    ShardFleet,
    ShardServer,
    ShardUnavailableError,
)
from repro.service.net import result_to_wire


# ------------------------------------------------------------------ ring owners


class TestRingOwners:
    def test_first_owner_is_the_route(self):
        ring = ConsistentHashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        for seed in range(20):
            key = f"{seed:08x}" + "0" * 56
            owners = ring.owners(key, 2)
            assert owners[0] == ring.route(key)

    def test_owners_are_distinct(self):
        ring = ConsistentHashRing()
        for name in ("a", "b", "c", "d"):
            ring.add(name)
        for seed in range(20):
            owners = ring.owners(f"{seed:08x}" + "f" * 56, 3)
            assert len(owners) == len(set(owners)) == 3

    def test_count_clamped_to_shard_count(self):
        ring = ConsistentHashRing()
        ring.add("only")
        assert ring.owners("ab" * 32, 5) == ["only"]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().owners("ab" * 32)

    def test_second_owner_changes_when_first_removed(self):
        # The hedge target is exactly where the key lands if its owner
        # disappears — the property rebalancing and hedging both lean on.
        ring = ConsistentHashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        for seed in range(20):
            key = f"{seed:08x}" + "a" * 56
            first, second = ring.owners(key, 2)
            ring.remove(first)
            assert ring.route(key) == second
            ring.add(first)


# --------------------------------------------------------------- snapshot codec


class TestSnapshotCodec:
    def test_round_trip(self):
        records = [
            {"t": "put", "k": "aa", "entry": {"plans": [1]}},
            {"t": "put", "k": "bb", "entry": {"plans": [2]}},
        ]
        assert snapshot_from_wire(snapshot_to_wire(records)) == records

    @pytest.mark.parametrize(
        "wire",
        [
            {"format": "wrong", "version": SNAPSHOT_VERSION, "records": []},
            {"format": SNAPSHOT_FORMAT, "version": 99, "records": []},
            {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION},
            {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "records": [{"t": "header"}],
            },
            {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "records": [{"t": "put", "k": 7, "entry": {}}],
            },
            {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "records": [{"t": "put", "k": "aa", "entry": "not a dict"}],
            },
        ],
    )
    def test_malformed_rejected(self, wire):
        with pytest.raises(ValueError):
            snapshot_from_wire(wire)


# ------------------------------------------------- snapshot op between servers


class ServerThread:
    """Run a :class:`ShardServer` on its own event loop in a daemon thread."""

    def __init__(self, listen: str, **kwargs) -> None:
        self.server = ShardServer(listen, **kwargs)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server never started"

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and not self.server._stopped.is_set():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(10)
        self._thread.join(10)
        self.server.gateway.close()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def request(server: ServerThread, payload: dict) -> dict:
    """One fresh-connection request/response past the hello."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    with sock:
        sock.connect(server.server.address.path)
        hello = recv_frame(sock)
        assert hello is not None and hello["op"] == "hello"
        send_frame(sock, payload)
        response = recv_frame(sock)
    assert response is not None
    return response


class TestSnapshotOp:
    def test_export_import_evict_moves_entries(self, tmp_path):
        queries = SteinbrunnGenerator(21).queries(3, n_tables=4)
        with (
            ServerThread(f"unix:{tmp_path / 'a.sock'}", n_workers=2) as alpha,
            ServerThread(f"unix:{tmp_path / 'b.sock'}", n_workers=2) as beta,
        ):
            for query in queries:
                assert request(
                    alpha, {"op": "optimize", "query": query_to_dict(query)}
                )["ok"]
            keys = request(alpha, {"op": "snapshot", "mode": "keys"})["keys"]
            assert len(keys) == len(queries)

            exported = request(
                alpha, {"op": "snapshot", "mode": "export", "keys": keys}
            )
            records = snapshot_from_wire(exported["snapshot"])
            assert sorted(record["k"] for record in records) == sorted(keys)

            imported = request(
                beta,
                {"op": "snapshot", "mode": "import", "snapshot": exported["snapshot"]},
            )
            assert imported["imported"] == len(keys)
            assert sorted(request(beta, {"op": "snapshot", "mode": "keys"})["keys"]) == sorted(keys)

            # The shipped entries answer on the new owner without a DP run.
            for query in queries:
                response = request(
                    beta, {"op": "optimize", "query": query_to_dict(query)}
                )
                assert response["result"]["cached"] is True
            stats = request(beta, {"op": "stats"})["stats"]
            assert stats["optimizations"] == 0
            assert stats["snapshot_imported"] == len(keys)

            evicted = request(
                alpha, {"op": "snapshot", "mode": "evict", "keys": keys}
            )
            assert evicted["evicted"] == len(keys)
            assert request(alpha, {"op": "snapshot", "mode": "keys"})["keys"] == []

    def test_import_identical_to_source_results(self, tmp_path):
        query = SteinbrunnGenerator(22).query(5)
        with (
            ServerThread(f"unix:{tmp_path / 'a.sock'}", n_workers=2) as alpha,
            ServerThread(f"unix:{tmp_path / 'b.sock'}", n_workers=2) as beta,
        ):
            source = request(alpha, {"op": "optimize", "query": query_to_dict(query)})
            keys = request(alpha, {"op": "snapshot", "mode": "keys"})["keys"]
            snapshot = request(
                alpha, {"op": "snapshot", "mode": "export", "keys": keys}
            )["snapshot"]
            request(beta, {"op": "snapshot", "mode": "import", "snapshot": snapshot})
            shipped = request(beta, {"op": "optimize", "query": query_to_dict(query)})
            assert shipped["result"]["plans"] == source["result"]["plans"]

    def test_import_refused_while_draining(self, tmp_path):
        with ServerThread(f"unix:{tmp_path / 'a.sock'}", n_workers=2) as server:
            server.server._draining = True
            try:
                response = request(
                    server,
                    {
                        "op": "snapshot",
                        "mode": "import",
                        "snapshot": snapshot_to_wire([]),
                    },
                )
                assert response["ok"] is False
                assert response["error"]["type"] == "draining"
                # Export stays available: a decommissioned shard must still
                # be able to give its entries away.
                assert request(server, {"op": "snapshot", "mode": "keys"})["ok"]
            finally:
                server.server._draining = False

    def test_malformed_snapshot_is_bad_request(self, tmp_path):
        with ServerThread(f"unix:{tmp_path / 'a.sock'}", n_workers=2) as server:
            for payload in (
                {"op": "snapshot", "mode": "teleport"},
                {"op": "snapshot", "mode": "import", "snapshot": {"format": "nope"}},
                {"op": "snapshot", "mode": "export", "keys": "not-a-list"},
            ):
                response = request(server, payload)
                assert response["ok"] is False
                assert response["error"]["type"] == "bad-request"


# ------------------------------------------------------------------ supervision


def wait_until(predicate, timeout_s: float = 20.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition never became true")


def optimize_until_served(gateway, queries, timeout_s: float = 20.0):
    """Retry a query batch through breaker-open windows; fail on timeout."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return [gateway.optimize(query) for query in queries]
        except ShardUnavailableError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


class TestFleetSupervision:
    def test_restart_readmission_and_warm_recovery(self, tmp_path):
        queries = SteinbrunnGenerator(31).queries(6, n_tables=4)
        with ShardFleet(
            2,
            tmp_path / "socks",
            cache_dir=tmp_path / "cache",
            n_workers=2,
            health_interval_s=0.05,
            backoff_base_s=0.05,
            log_dir=tmp_path / "logs",
            membership_path=tmp_path / "membership.json",
        ) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100, reset_timeout_s=0.2
            ) as gateway:
                fleet.attach_router(gateway)
                first = [gateway.optimize(query) for query in queries]
                assert all(result.plans for result in first)

                victim = fleet._handles["shard-0"]
                old_pid = victim.process.pid
                victim.process.kill()
                wait_until(
                    lambda: fleet.stats()["restarts"] >= 1
                    and fleet._handles["shard-0"].alive()
                )
                stats = fleet.stats()
                assert stats["shards"]["shard-0"]["pid"] != old_pid
                assert stats["shards"]["shard-0"]["restarts"] == 1

                # The router re-admits the replacement through its breaker's
                # half-open probe — same endpoint, no topology change — and
                # the replacement recovered its cache from its disk log, so
                # nothing is re-optimized.
                second = optimize_until_served(gateway, queries)
                assert all(result.cached for result in second)
                assert [result_to_wire(r)["plans"] for r in first] == [
                    result_to_wire(r)["plans"] for r in second
                ]
            # Supervisor log files exist for CI to upload on failure.
            logs = sorted(p.name for p in (tmp_path / "logs").iterdir())
            assert logs == ["shard-0.log", "shard-1.log"]

    def test_membership_file_tracks_topology(self, tmp_path):
        import json

        membership = tmp_path / "membership.json"
        with ShardFleet(
            2,
            tmp_path / "socks",
            n_workers=2,
            membership_path=membership,
        ) as fleet:
            published = json.loads(membership.read_text())
            assert published["format"] == "repro-fleet"
            assert sorted(published["shards"]) == ["shard-0", "shard-1"]
            fleet.add_shard()
            published = json.loads(membership.read_text())
            assert sorted(published["shards"]) == ["shard-0", "shard-1", "shard-2"]
        # After stop the fleet has no members.
        assert json.loads(membership.read_text())["shards"] == {}

    def test_fleet_validates_inputs(self, tmp_path):
        with pytest.raises(ValueError):
            ShardFleet(0, tmp_path / "socks")
        fleet = ShardFleet(1, tmp_path / "socks")
        with pytest.raises(FleetError):
            fleet.add_shard()  # not started


# ------------------------------------------------------------- live rebalancing


class TestLiveRebalance:
    def test_64_client_replay_with_mid_replay_expansion(self, tmp_path):
        """The acceptance criterion: adding a 4th shard mid-replay moves
        keys with zero additional DP runs — the sum of per-shard
        optimizations stays exactly one per unique fingerprint, and every
        plan is bit-identical to its pre-rebalance answer."""
        profile = TrafficProfile(n_requests=96, n_unique=10, tables=(4, 5))
        schedule = generate_traffic(profile)
        expected = unique_fingerprints(schedule)
        with ShardFleet(
            3,
            tmp_path / "socks",
            cache_dir=tmp_path / "cache",
            n_workers=2,
            max_in_flight=64,
            membership_path=tmp_path / "membership.json",
        ) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=500, request_timeout_s=120.0
            ) as gateway:
                fleet.attach_router(gateway)
                warmup = replay_threaded(gateway, schedule, n_clients=64)
                baseline = {
                    result.fingerprint: result_to_wire(result)["plans"]
                    for result in warmup.results
                }

                half = len(schedule) // 2
                first = replay_threaded(gateway, schedule[:half], n_clients=64)
                added = fleet.add_shard()
                second = replay_threaded(gateway, schedule[half:], n_clients=64)

                stats = gateway.stats()
                fleet_stats = fleet.stats()
            per_shard = {
                name: shard["optimizations"]
                for name, shard in stats["shards"].items()
            }
            # Zero extra DP runs: the unique set was optimized exactly once,
            # before, during, and after the expansion.
            assert sum(per_shard.values()) == len(expected), per_shard
            assert added in per_shard and per_shard[added] == 0
            assert fleet_stats["snapshot_shipped"] > 0
            assert fleet_stats["rebalances"] == 1
            # Plans are bit-identical across the flip.
            for result in [*first.results, *second.results]:
                assert result.cached
                assert result_to_wire(result)["plans"] == baseline[result.fingerprint]

    def test_remove_shard_ships_entries_to_survivors(self, tmp_path):
        queries = SteinbrunnGenerator(41).queries(8, n_tables=4)
        with ShardFleet(3, tmp_path / "socks", n_workers=2) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100
            ) as gateway:
                fleet.attach_router(gateway)
                first = [gateway.optimize(query) for query in queries]
                fleet.remove_shard("shard-1")
                assert gateway.shard_names() == ["shard-0", "shard-2"]
                # Every entry the leaving shard held was shipped to its new
                # owner before routers dropped it: still zero re-runs.
                second = [gateway.optimize(query) for query in queries]
                assert all(result.cached for result in second)
                assert [result_to_wire(r)["plans"] for r in first] == [
                    result_to_wire(r)["plans"] for r in second
                ]
            with pytest.raises(ValueError):
                fleet.remove_shard("shard-7")

    def test_target_killed_mid_shipment_rolls_back(self, tmp_path):
        """Kill the new shard mid-snapshot-shipment: the rebalance rolls
        back with no lost or duplicated entries and no client hangs."""
        queries = SteinbrunnGenerator(42).queries(8, n_tables=4)
        with ShardFleet(2, tmp_path / "socks", n_workers=2) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100
            ) as gateway:
                fleet.attach_router(gateway)
                for query in queries:
                    gateway.optimize(query)

                real_call = fleet._shard_call

                def sabotaged(spec, payload, timeout_s=30.0):
                    if payload.get("mode") == "import":
                        # The import target (the half-provisioned shard, not
                        # yet registered) dies mid-shipment.
                        raise OSError("target shard died mid-shipment")
                    return real_call(spec, payload, timeout_s)

                fleet._shard_call = sabotaged
                try:
                    with pytest.raises(FleetRebalanceError):
                        fleet.add_shard()
                finally:
                    fleet._shard_call = real_call

                # Rollback: routers never learned the new shard, the fleet
                # did not register it, and no source entry moved — every key
                # is still served from its old owner's cache.
                assert gateway.shard_names() == ["shard-0", "shard-1"]
                assert sorted(fleet.endpoints()) == ["shard-0", "shard-1"]
                assert fleet.stats()["rebalances"] == 0
                results = [gateway.optimize(query) for query in queries]
                assert all(result.cached for result in results)
                # And the fleet still works: a clean retry succeeds.
                added = fleet.add_shard()
                after = [gateway.optimize(query) for query in queries]
                assert all(result.cached for result in after)
                assert added in gateway.shard_names()

    def test_source_shard_killed_mid_shipment(self, tmp_path):
        """A *real* SIGKILL of a source shard mid-shipment: the rebalance
        rolls back, the supervisor restarts the victim, and — because its
        cache log survived — every entry is served warm afterwards."""
        queries = SteinbrunnGenerator(44).queries(8, n_tables=4)
        with ShardFleet(
            2,
            tmp_path / "socks",
            cache_dir=tmp_path / "cache",
            n_workers=2,
            health_interval_s=0.05,
            backoff_base_s=0.5,
        ) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100, reset_timeout_s=0.2
            ) as gateway:
                fleet.attach_router(gateway)
                for query in queries:
                    gateway.optimize(query)
                real_call = fleet._shard_call

                def sabotaged(spec, payload, timeout_s=30.0):
                    if payload.get("mode") == "keys" and "shard-0" in spec:
                        fleet._handles["shard-0"].process.kill()
                    return real_call(spec, payload, timeout_s)

                fleet._shard_call = sabotaged
                try:
                    with pytest.raises(FleetRebalanceError):
                        fleet.add_shard()
                finally:
                    fleet._shard_call = real_call

                assert gateway.shard_names() == ["shard-0", "shard-1"]
                wait_until(
                    lambda: fleet.stats()["restarts"] >= 1
                    and fleet._handles["shard-0"].alive()
                )
                # The restarted source recovered its log: nothing was lost.
                results = optimize_until_served(gateway, queries)
                assert all(result.cached for result in results)
                # A clean retry of the expansion now succeeds.
                fleet.add_shard()
                after = optimize_until_served(gateway, queries)
                assert all(result.cached for result in after)

    def test_remove_shard_shipping_failure_keeps_shard(self, tmp_path):
        queries = SteinbrunnGenerator(43).queries(6, n_tables=4)
        with ShardFleet(2, tmp_path / "socks", n_workers=2) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100
            ) as gateway:
                fleet.attach_router(gateway)
                for query in queries:
                    gateway.optimize(query)
                real_call = fleet._shard_call

                def sabotaged(spec, payload, timeout_s=30.0):
                    if payload.get("mode") == "import":
                        raise OSError("import target unreachable")
                    return real_call(spec, payload, timeout_s)

                fleet._shard_call = sabotaged
                try:
                    with pytest.raises(FleetRebalanceError):
                        fleet.remove_shard("shard-0")
                finally:
                    fleet._shard_call = real_call
                # The shard stays in the ring and keeps serving its keys.
                assert gateway.shard_names() == ["shard-0", "shard-1"]
                results = [gateway.optimize(query) for query in queries]
                assert all(result.cached for result in results)

    def test_refuses_to_remove_last_shard(self, tmp_path):
        with ShardFleet(1, tmp_path / "socks", n_workers=2) as fleet:
            with pytest.raises(FleetError):
                fleet.remove_shard("shard-0")


# ---------------------------------------------------------------------- hedging


class TestHedging:
    def test_hedging_caps_tail_against_slow_shard(self, tmp_path):
        queries = SteinbrunnGenerator(51).queries(10, n_tables=4)
        with ShardFleet(
            2,
            tmp_path / "socks",
            n_workers=2,
            inject_latency_ms={"shard-1": 400.0},
        ) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(),
                overload_retries=100,
                hedge_multiplier=2.0,
                hedge_min_s=0.05,
            ) as gateway:
                started = time.monotonic()
                results = [gateway.optimize(query) for query in queries]
                elapsed = time.monotonic() - started
                stats = gateway.stats()
            assert all(result.plans for result in results)
            assert stats["hedged"] > 0
            assert stats["hedged_wins"] > 0
            # Without hedging, every key owned by the slow shard pays the
            # injected 400ms; hedged, the tail is capped near the budget.
            assert elapsed < 0.4 * len(queries) / 2, elapsed

    def test_hedging_off_by_default_preserves_singleflight(self, tmp_path):
        queries = SteinbrunnGenerator(52).queries(6, n_tables=4)
        with ShardFleet(2, tmp_path / "socks", n_workers=2) as fleet:
            with NetworkOptimizerGateway(
                fleet.endpoints(), overload_retries=100
            ) as gateway:
                for query in queries:
                    gateway.optimize(query)
                stats = gateway.stats()
            assert stats["hedged"] == 0
            assert stats["hedged_wins"] == 0
            per_shard = sum(
                shard["optimizations"] for shard in stats["shards"].values()
            )
            assert per_shard == len(queries)

    def test_hedge_parameters_validated(self):
        with pytest.raises(ValueError):
            NetworkOptimizerGateway({}, hedge_multiplier=-1.0)
        with pytest.raises(ValueError):
            NetworkOptimizerGateway({}, hedge_min_s=0.0)
