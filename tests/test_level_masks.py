"""Gosper's-hack level enumeration vs itertools ground truth."""

from __future__ import annotations

from itertools import combinations
from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sma import _level_masks
from repro.util.bitset import mask_of, popcount


class TestLevelMasks:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=14),
        data=st.data(),
    )
    def test_matches_itertools(self, n, data):
        size = data.draw(st.integers(min_value=1, max_value=n))
        masks = _level_masks(n, size)
        expected = sorted(
            mask_of(combo) for combo in combinations(range(n), size)
        )
        assert masks == expected

    def test_counts(self):
        for n in range(1, 12):
            for size in range(1, n + 1):
                assert len(_level_masks(n, size)) == comb(n, size)

    def test_all_levels_partition_the_power_set(self):
        n = 8
        union = set()
        for size in range(1, n + 1):
            level = set(_level_masks(n, size))
            assert not union & level
            union |= level
        assert len(union) == (1 << n) - 1

    def test_sizes_homogeneous(self):
        assert all(popcount(m) == 5 for m in _level_masks(12, 5))
