"""Serialization: the byte model and the wire codecs."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.cluster.serialization import (
    MEMO_ENTRY_BYTES,
    float_from_wire,
    float_to_wire,
    settings_from_wire,
    settings_to_wire,
    MESSAGE_HEADER_BYTES,
    PER_METRIC_BYTES,
    PER_PREDICATE_BYTES,
    PER_TABLE_BYTES,
    PLAN_NODE_BYTES,
    SET_ID_BYTES,
    TASK_HEADER_BYTES,
    memo_entries_bytes,
    order_from_wire,
    order_to_wire,
    plan_bytes,
    plan_from_wire,
    plan_node_count,
    plan_to_wire,
    plans_bytes,
    plans_from_wire,
    plans_to_wire,
    query_bytes,
    sma_task_bytes,
    task_bytes,
    timing_from_wire,
    timing_to_wire,
)
from repro.cluster.simulator import SimulatedTiming
from repro.config import PARAMETRIC_OBJECTIVES, OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.plans.orders import SortOrder
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


@pytest.fixture
def query():
    return SteinbrunnGenerator(1).query(6)


@pytest.fixture
def plan(query):
    return best_plan(optimize_serial(query, OptimizerSettings()))


class TestQueryBytes:
    def test_formula(self, query):
        expected = (
            MESSAGE_HEADER_BYTES + 6 * PER_TABLE_BYTES + 5 * PER_PREDICATE_BYTES
        )
        assert query_bytes(query) == expected

    def test_grows_with_tables(self):
        small = query_bytes(SteinbrunnGenerator(1).query(4))
        large = query_bytes(SteinbrunnGenerator(1).query(8))
        assert large - small == 4 * (PER_TABLE_BYTES + PER_PREDICATE_BYTES)

    def test_task_adds_header(self, query):
        assert task_bytes(query) == query_bytes(query) + TASK_HEADER_BYTES


class TestPlanBytes:
    def test_node_count(self, plan):
        assert plan_node_count(plan) == 2 * 6 - 1

    def test_plan_bytes_formula(self, plan):
        expected = (
            MESSAGE_HEADER_BYTES
            + PLAN_NODE_BYTES * 11
            + PER_METRIC_BYTES * len(plan.cost)
        )
        assert plan_bytes(plan) == expected

    def test_plans_bytes_single_header(self, plan):
        two = plans_bytes([plan, plan])
        one = plans_bytes([plan])
        assert two - one == plan_bytes(plan) - MESSAGE_HEADER_BYTES

    def test_empty_result_still_costs_header(self):
        assert plans_bytes([]) == MESSAGE_HEADER_BYTES


class TestMemoBytes:
    def test_zero_entries_free(self):
        assert memo_entries_bytes(0) == 0

    def test_linear_in_entries(self):
        assert (
            memo_entries_bytes(100) - memo_entries_bytes(50)
            == 50 * MEMO_ENTRY_BYTES
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            memo_entries_bytes(-1)


class TestSmaTaskBytes:
    def test_formula(self):
        assert sma_task_bytes(10) == TASK_HEADER_BYTES + 10 * SET_ID_BYTES

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sma_task_bytes(-1)


# ------------------------------------------------------------------ wire codecs


#: The three query classes of the serving tier's feature mix; a frontier of
#: each must survive the wire bit-identically (plain = one optimal plan,
#: orders = order-tagged Pareto plans, parametric = a lower-envelope
#: frontier with multi-metric cost vectors).
QUERY_CLASSES = {
    "plain": OptimizerSettings(),
    "orders": OptimizerSettings(consider_orders=True),
    "parametric": OptimizerSettings(
        objectives=PARAMETRIC_OBJECTIVES, parametric=True
    ),
}


class TestWireCodecs:
    @pytest.mark.parametrize("class_name", sorted(QUERY_CLASSES))
    @pytest.mark.parametrize("seed", [1, 7, 23])
    @pytest.mark.parametrize(
        "kind", [JoinGraphKind.STAR, JoinGraphKind.CHAIN, JoinGraphKind.CYCLE]
    )
    def test_frontiers_round_trip_bit_identically(self, class_name, seed, kind):
        """Property sweep: every plan of every frontier of every class
        survives encode -> JSON text -> decode with equality on every field
        — frozen dataclasses compare exactly, so ``==`` is bit-identity for
        the float cost vectors and cardinalities too."""
        settings = QUERY_CLASSES[class_name]
        query = SteinbrunnGenerator(seed, clustered_tables=True).query(6, kind)
        frontier = optimize_serial(query, settings).plans
        assert frontier, "sweep must exercise non-empty frontiers"
        # Through actual JSON text, exactly as the disk tier stores records.
        decoded = plans_from_wire(json.loads(json.dumps(plans_to_wire(frontier))))
        assert decoded == frontier
        assert [plan.cost for plan in decoded] == [plan.cost for plan in frontier]
        assert [plan.order for plan in decoded] == [plan.order for plan in frontier]

    def test_frontier_order_preserved_verbatim(self):
        query = SteinbrunnGenerator(3).query(5)
        frontier = optimize_serial(
            query, OptimizerSettings(objectives=PARAMETRIC_OBJECTIVES, parametric=True)
        ).plans
        decoded = plans_from_wire(plans_to_wire(frontier))
        assert [plan.mask for plan in decoded] == [plan.mask for plan in frontier]

    def test_sort_order_round_trip(self):
        order = SortOrder(table=3, column="c2")
        assert order_from_wire(order_to_wire(order)) == order
        assert order_to_wire(None) is None
        assert order_from_wire(None) is None

    def test_malformed_plan_record_fails_loudly(self):
        query = SteinbrunnGenerator(1).query(4)
        record = plan_to_wire(best_plan(optimize_serial(query, OptimizerSettings())))
        del record["cost"]
        with pytest.raises(ValueError):
            plan_from_wire(record)
        with pytest.raises(ValueError):
            plan_from_wire({"op": "reduce", "mask": 1})

    def test_timing_round_trip_bit_identical(self):
        timing = SimulatedTiming(
            dispatch_s=0.1 + 0.2,  # deliberately non-representable floats
            workers_done_s=1.0 / 3.0,
            collect_s=2.5e-7,
            master_prune_s=0.0,
            network_bytes=123456,
            network_messages=42,
            worker_compute_s=[0.1, 1e-9, 7.7],
        )
        decoded = timing_from_wire(json.loads(json.dumps(timing_to_wire(timing))))
        assert decoded == timing


class TestNonFiniteFloats:
    """Non-finite costs must cross the wire as *standard* JSON.

    Parametric lower envelopes legitimately use ``±inf`` sentinels;
    ``json.dumps`` would emit bare ``Infinity`` for them — a token no
    strict parser (or non-Python peer) accepts.  The codecs carry them as
    sentinel strings instead, and reject NaN in both directions.
    """

    @pytest.mark.parametrize(
        "value",
        [0.0, -0.0, 1.0 / 3.0, 2.5e-308, 1.8e308, -7.7, math.inf, -math.inf],
    )
    def test_values_round_trip_bit_identically(self, value):
        wire = float_to_wire(value)
        decoded = float_from_wire(json.loads(json.dumps(wire, allow_nan=False)))
        assert decoded == value
        assert math.copysign(1.0, decoded) == math.copysign(1.0, value)

    def test_infinities_become_sentinel_strings(self):
        assert float_to_wire(math.inf) == "inf"
        assert float_to_wire(-math.inf) == "-inf"
        assert float_from_wire("inf") == math.inf
        assert float_from_wire("-inf") == -math.inf

    def test_nan_rejected_on_encode_and_decode(self):
        with pytest.raises(ValueError):
            float_to_wire(math.nan)
        with pytest.raises(ValueError):
            float_from_wire(math.nan)
        with pytest.raises(ValueError):
            float_from_wire("nan")

    def test_unknown_sentinel_rejected(self):
        with pytest.raises(ValueError):
            float_from_wire("infinity")

    def test_legacy_bare_infinity_still_decodes(self):
        # Logs written before sentinel encoding hold bare Infinity tokens;
        # Python's json parses them to float inf, which decode tolerates.
        assert float_from_wire(json.loads("Infinity")) == math.inf

    @pytest.mark.parametrize("class_name", sorted(QUERY_CLASSES))
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_infinite_costs_survive_strict_json(self, class_name, seed):
        """The bit-identity sweep extended to non-finite cost vectors: a
        frontier whose every cost vector carries an inf round-trips through
        ``json.dumps(..., allow_nan=False)`` — i.e. the encoding really is
        standard JSON even with non-finite members."""
        settings = QUERY_CLASSES[class_name]
        query = SteinbrunnGenerator(seed, clustered_tables=True).query(5)
        frontier = [
            dataclasses.replace(
                plan, cost=(math.inf,) + tuple(plan.cost[1:]), rows=math.inf
            )
            for plan in optimize_serial(query, settings).plans
        ]
        text = json.dumps(plans_to_wire(frontier), allow_nan=False)
        assert "Infinity" not in text and "NaN" not in text
        decoded = plans_from_wire(json.loads(text))
        assert decoded == frontier

    def test_nan_cost_refused_at_encode_time(self, plan):
        poisoned = dataclasses.replace(plan, cost=(math.nan,))
        with pytest.raises(ValueError):
            plan_to_wire(poisoned)

    @pytest.mark.parametrize("class_name", sorted(QUERY_CLASSES))
    def test_settings_round_trip(self, class_name):
        settings = dataclasses.replace(QUERY_CLASSES[class_name], alpha=1.1 + 0.2)
        decoded = settings_from_wire(
            json.loads(json.dumps(settings_to_wire(settings), allow_nan=False))
        )
        assert decoded == settings

    def test_malformed_settings_fail_loudly(self):
        record = settings_to_wire(OptimizerSettings())
        del record["objectives"]
        with pytest.raises(ValueError):
            settings_from_wire(record)
