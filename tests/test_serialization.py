"""Serialization byte model."""

from __future__ import annotations

import pytest

from repro.cluster.serialization import (
    MEMO_ENTRY_BYTES,
    MESSAGE_HEADER_BYTES,
    PER_METRIC_BYTES,
    PER_PREDICATE_BYTES,
    PER_TABLE_BYTES,
    PLAN_NODE_BYTES,
    SET_ID_BYTES,
    TASK_HEADER_BYTES,
    memo_entries_bytes,
    plan_bytes,
    plan_node_count,
    plans_bytes,
    query_bytes,
    sma_task_bytes,
    task_bytes,
)
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def query():
    return SteinbrunnGenerator(1).query(6)


@pytest.fixture
def plan(query):
    return best_plan(optimize_serial(query, OptimizerSettings()))


class TestQueryBytes:
    def test_formula(self, query):
        expected = (
            MESSAGE_HEADER_BYTES + 6 * PER_TABLE_BYTES + 5 * PER_PREDICATE_BYTES
        )
        assert query_bytes(query) == expected

    def test_grows_with_tables(self):
        small = query_bytes(SteinbrunnGenerator(1).query(4))
        large = query_bytes(SteinbrunnGenerator(1).query(8))
        assert large - small == 4 * (PER_TABLE_BYTES + PER_PREDICATE_BYTES)

    def test_task_adds_header(self, query):
        assert task_bytes(query) == query_bytes(query) + TASK_HEADER_BYTES


class TestPlanBytes:
    def test_node_count(self, plan):
        assert plan_node_count(plan) == 2 * 6 - 1

    def test_plan_bytes_formula(self, plan):
        expected = (
            MESSAGE_HEADER_BYTES
            + PLAN_NODE_BYTES * 11
            + PER_METRIC_BYTES * len(plan.cost)
        )
        assert plan_bytes(plan) == expected

    def test_plans_bytes_single_header(self, plan):
        two = plans_bytes([plan, plan])
        one = plans_bytes([plan])
        assert two - one == plan_bytes(plan) - MESSAGE_HEADER_BYTES

    def test_empty_result_still_costs_header(self):
        assert plans_bytes([]) == MESSAGE_HEADER_BYTES


class TestMemoBytes:
    def test_zero_entries_free(self):
        assert memo_entries_bytes(0) == 0

    def test_linear_in_entries(self):
        assert (
            memo_entries_bytes(100) - memo_entries_bytes(50)
            == 50 * MEMO_ENTRY_BYTES
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            memo_entries_bytes(-1)


class TestSmaTaskBytes:
    def test_formula(self):
        assert sma_task_bytes(10) == TASK_HEADER_BYTES + 10 * SET_ID_BYTES

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sma_task_bytes(-1)
