"""Query JSON round-tripping and the command-line interface."""

from __future__ import annotations

import importlib.util
import json

import pytest

from repro.cli import main
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.io import (
    load_query,
    plan_to_dict,
    query_from_dict,
    query_to_dict,
    save_query,
)
from tests.conftest import make_manual_query

#: Cached provenance records the backend AUTO resolved to, which depends on
#: whether numpy (and hence vecdp) is available in this environment.
AUTO_BACKEND = (
    "vecdp" if importlib.util.find_spec("numpy") is not None else "fastdp"
)


class TestQueryRoundTrip:
    def test_roundtrip_preserves_everything(self):
        query = SteinbrunnGenerator(5).query(6)
        clone = query_from_dict(query_to_dict(query))
        assert clone.name == query.name
        assert clone.predicates == query.predicates
        assert [t.cardinality for t in clone.tables] == [
            t.cardinality for t in query.tables
        ]
        assert [t.columns for t in clone.tables] == [t.columns for t in query.tables]

    def test_file_roundtrip(self, tmp_path):
        query = make_manual_query([100, 200], [(0, 1, 0.25)])
        path = tmp_path / "q.json"
        save_query(query, path)
        loaded = load_query(path)
        assert loaded.predicates == query.predicates

    def test_default_selectivity(self):
        data = query_to_dict(make_manual_query([10, 20], [(0, 1, 0.5)]))
        del data["predicates"][0]["selectivity"]
        loaded = query_from_dict(data)
        # Columns have domain 100 in the manual query -> Steinbrunn 1/100.
        assert loaded.predicates[0].selectivity == pytest.approx(0.01)

    def test_malformed_table_rejected(self):
        with pytest.raises(ValueError, match="table"):
            query_from_dict({"tables": [{"name": "X"}], "predicates": []})

    def test_malformed_predicate_rejected(self):
        data = query_to_dict(make_manual_query([10, 20]))
        data["predicates"] = [{"left_table": 0}]
        with pytest.raises(ValueError, match="predicate"):
            query_from_dict(data)

    def test_optimization_equivalent_after_roundtrip(self):
        query = SteinbrunnGenerator(6).query(6)
        clone = query_from_dict(query_to_dict(query))
        original = best_plan(optimize_serial(query, OptimizerSettings()))
        reloaded = best_plan(optimize_serial(clone, OptimizerSettings()))
        assert original.cost == reloaded.cost

    def test_clustering_survives_roundtrip(self):
        # Regression: clustered_on used to be dropped by the codec, so a
        # clustered query crossing the wire lost its leaf orders — changing
        # both its plans and its fingerprint relative to the sender's.
        query = SteinbrunnGenerator(7, clustered_tables=True).query(5)
        assert any(table.clustered_on for table in query.tables)
        clone = query_from_dict(json.loads(json.dumps(query_to_dict(query))))
        assert clone == query
        from repro.service import fingerprint

        settings = OptimizerSettings()
        assert fingerprint(clone, settings, 8) == fingerprint(query, settings, 8)

    def test_unclustered_tables_omit_the_field(self):
        data = query_to_dict(make_manual_query([10, 20], [(0, 1, 0.5)]))
        assert all("clustered_on" not in table for table in data["tables"])


class TestPlanToDict:
    def test_structure(self):
        query = make_manual_query([100, 200], [(0, 1, 0.1)])
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        data = plan_to_dict(plan, ("A", "B"))
        assert data["operator"] == "join"
        assert {data["outer"]["operator"], data["inner"]["operator"]} == {"scan"}
        assert {data["outer"]["table"], data["inner"]["table"]} == {"A", "B"}
        assert data["cost"] == list(plan.cost)


class TestCLI:
    def test_generate_then_optimize(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        assert main(["generate", "--tables", "6", "-o", str(path)]) == 0
        assert path.exists()
        assert main([
            "optimize", str(path), "--workers", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "partitions: 4" in out
        assert "best cost" in out

    def test_optimize_json_output(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "5", "-o", str(path)])
        capsys.readouterr()
        assert main(["optimize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["partitions"] == 1
        assert payload["plans"][0]["operator"] == "join"

    def test_optimize_multi_objective(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "6", "-o", str(path)])
        assert main([
            "optimize", str(path),
            "--objectives", "time,buffer", "--alpha", "5", "--workers", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "pareto frontier" in out

    def test_optimize_bushy(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "6", "-o", str(path)])
        assert main(["optimize", str(path), "--space", "bushy"]) == 0
        assert "bushy" in capsys.readouterr().out

    def test_unknown_objective_rejected(self, tmp_path):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "4", "-o", str(path)])
        with pytest.raises(SystemExit):
            main(["optimize", str(path), "--objectives", "carbon"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "--tables", "5", "--seed", "3", "-o", str(a)])
        main(["generate", "--tables", "5", "--seed", "3", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestCacheCLI:
    """serve-batch --cache-dir and the cache management subcommand."""

    @pytest.fixture
    def query_files(self, tmp_path):
        paths = []
        for seed in (11, 12):
            path = tmp_path / f"query-{seed}.json"
            assert (
                main([
                    "generate", "--tables", "5", "--seed", str(seed),
                    "-o", str(path),
                ])
                == 0
            )
            paths.append(str(path))
        return paths

    def serve(self, query_files, cache_dir, capsys, *extra):
        assert (
            main([
                "serve-batch", *query_files,
                "--cache-dir", str(cache_dir), "--json", *extra,
            ])
            == 0
        )
        return json.loads(capsys.readouterr().out)

    def test_cache_dir_survives_restart(self, tmp_path, query_files, capsys):
        cache_dir = tmp_path / "plans"
        cold = self.serve(query_files, cache_dir, capsys)
        assert [r["cached"] for r in cold["rounds"][0]["results"]] == [
            False,
            False,
        ]
        assert cold["cache_dir"] == str(cache_dir)
        # A second CLI invocation is a genuine process-restart stand-in at
        # the API boundary: new service, new memory tier, same logs.
        warm = self.serve(query_files, cache_dir, capsys)
        assert [r["cached"] for r in warm["rounds"][0]["results"]] == [
            True,
            True,
        ]
        assert warm["cache"]["disk_hits"] == 2
        assert warm["cache"]["misses"] == 0

    def test_sharded_json_with_tiers_is_serializable(
        self, tmp_path, query_files, capsys
    ):
        # Regression: per-shard TieredStats must flow through to_dict(),
        # not dataclasses.asdict, or --json crashes on the composite.
        payload = self.serve(
            query_files, tmp_path / "plans", capsys, "--shards", "2"
        )
        for shard in payload["gateway"]["shards"]:
            assert "disk_hits" in shard and "hit_rate" in shard
        # The top-level aggregate carries the tier breakdown too: the
        # GatewayStats duck type only sums hits/misses, so the CLI must
        # fold the per-shard tier counters in itself.
        assert "disk_hits" in payload["cache"]
        warm = self.serve(
            query_files, tmp_path / "plans", capsys, "--shards", "2"
        )
        assert warm["cache"]["disk_hits"] == 2

    def test_text_output_reports_tiers(self, tmp_path, query_files, capsys):
        cache_dir = tmp_path / "plans"
        assert (
            main(["serve-batch", *query_files, "--cache-dir", str(cache_dir)])
            == 0
        )
        out = capsys.readouterr().out
        assert "tiers:" in out and "disk hits" in out

    def test_inspect_lists_provenance(self, tmp_path, query_files, capsys):
        cache_dir = tmp_path / "plans"
        self.serve(query_files, cache_dir, capsys)
        log = str(cache_dir / "shard-0.log")
        assert main(["cache", "inspect", log, "--json"]) == 0
        [report] = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2
        for record in report["records"]:
            assert record["provenance"]["backend_used"] == AUTO_BACKEND
            assert record["provenance"]["registry_generation"] >= 1
        # The human-readable rendering works on the same log.
        assert main(["cache", "inspect", log]) == 0
        assert f"backend={AUTO_BACKEND}" in capsys.readouterr().out

    def test_export_then_import_moves_entries(
        self, tmp_path, query_files, capsys
    ):
        cache_dir = tmp_path / "plans"
        self.serve(query_files, cache_dir, capsys)
        snapshot = str(tmp_path / "plans.snap")
        log = str(cache_dir / "shard-0.log")
        assert main(["cache", "export", log, "-o", snapshot]) == 0
        other = str(tmp_path / "other-shard.log")
        assert main(["cache", "import", snapshot, "--into", other]) == 0
        capsys.readouterr()
        assert main(["cache", "inspect", other, "--json"]) == 0
        [report] = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2

    def test_invalidate_selectively_forces_reoptimization(
        self, tmp_path, query_files, capsys
    ):
        cache_dir = tmp_path / "plans"
        self.serve(query_files, cache_dir, capsys)
        log = str(cache_dir / "shard-0.log")
        assert (
            main([
                "cache", "invalidate", log,
                "--backend", AUTO_BACKEND, "--below-generation", "1000000",
                "--json",
            ])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["logs"][0]["invalidated"] == 2
        assert payload["logs"][0]["remaining"] == 0
        # The retired entries really are gone: the next serve re-optimizes.
        rerun = self.serve(query_files, cache_dir, capsys)
        assert [r["cached"] for r in rerun["rounds"][0]["results"]] == [
            False,
            False,
        ]

    def test_invalidate_misses_non_matching_backend(
        self, tmp_path, query_files, capsys
    ):
        cache_dir = tmp_path / "plans"
        self.serve(query_files, cache_dir, capsys)
        log = str(cache_dir / "shard-0.log")
        assert main(["cache", "invalidate", log, "--backend", "legacy"]) == 0
        assert "invalidated 0 entries, 2 remaining" in capsys.readouterr().out

    def test_invalidate_refuses_implicit_match_everything(self, tmp_path):
        log = str(tmp_path / "empty.log")
        with pytest.raises(SystemExit, match="match-everything"):
            main(["cache", "invalidate", log])
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["cache", "invalidate", log, "--all", "--backend", "fastdp"])

    def test_invalidate_all_flushes(self, tmp_path, query_files, capsys):
        cache_dir = tmp_path / "plans"
        self.serve(query_files, cache_dir, capsys)
        log = str(cache_dir / "shard-0.log")
        assert main(["cache", "invalidate", log, "--all"]) == 0
        assert "2 entries, 0 remaining" in capsys.readouterr().out
