"""Query JSON round-tripping and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.io import (
    load_query,
    plan_to_dict,
    query_from_dict,
    query_to_dict,
    save_query,
)
from tests.conftest import make_manual_query


class TestQueryRoundTrip:
    def test_roundtrip_preserves_everything(self):
        query = SteinbrunnGenerator(5).query(6)
        clone = query_from_dict(query_to_dict(query))
        assert clone.name == query.name
        assert clone.predicates == query.predicates
        assert [t.cardinality for t in clone.tables] == [
            t.cardinality for t in query.tables
        ]
        assert [t.columns for t in clone.tables] == [t.columns for t in query.tables]

    def test_file_roundtrip(self, tmp_path):
        query = make_manual_query([100, 200], [(0, 1, 0.25)])
        path = tmp_path / "q.json"
        save_query(query, path)
        loaded = load_query(path)
        assert loaded.predicates == query.predicates

    def test_default_selectivity(self):
        data = query_to_dict(make_manual_query([10, 20], [(0, 1, 0.5)]))
        del data["predicates"][0]["selectivity"]
        loaded = query_from_dict(data)
        # Columns have domain 100 in the manual query -> Steinbrunn 1/100.
        assert loaded.predicates[0].selectivity == pytest.approx(0.01)

    def test_malformed_table_rejected(self):
        with pytest.raises(ValueError, match="table"):
            query_from_dict({"tables": [{"name": "X"}], "predicates": []})

    def test_malformed_predicate_rejected(self):
        data = query_to_dict(make_manual_query([10, 20]))
        data["predicates"] = [{"left_table": 0}]
        with pytest.raises(ValueError, match="predicate"):
            query_from_dict(data)

    def test_optimization_equivalent_after_roundtrip(self):
        query = SteinbrunnGenerator(6).query(6)
        clone = query_from_dict(query_to_dict(query))
        original = best_plan(optimize_serial(query, OptimizerSettings()))
        reloaded = best_plan(optimize_serial(clone, OptimizerSettings()))
        assert original.cost == reloaded.cost


class TestPlanToDict:
    def test_structure(self):
        query = make_manual_query([100, 200], [(0, 1, 0.1)])
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        data = plan_to_dict(plan, ("A", "B"))
        assert data["operator"] == "join"
        assert {data["outer"]["operator"], data["inner"]["operator"]} == {"scan"}
        assert {data["outer"]["table"], data["inner"]["table"]} == {"A", "B"}
        assert data["cost"] == list(plan.cost)


class TestCLI:
    def test_generate_then_optimize(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        assert main(["generate", "--tables", "6", "-o", str(path)]) == 0
        assert path.exists()
        assert main([
            "optimize", str(path), "--workers", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "partitions: 4" in out
        assert "best cost" in out

    def test_optimize_json_output(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "5", "-o", str(path)])
        capsys.readouterr()
        assert main(["optimize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["partitions"] == 1
        assert payload["plans"][0]["operator"] == "join"

    def test_optimize_multi_objective(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "6", "-o", str(path)])
        assert main([
            "optimize", str(path),
            "--objectives", "time,buffer", "--alpha", "5", "--workers", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "pareto frontier" in out

    def test_optimize_bushy(self, tmp_path, capsys):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "6", "-o", str(path)])
        assert main(["optimize", str(path), "--space", "bushy"]) == 0
        assert "bushy" in capsys.readouterr().out

    def test_unknown_objective_rejected(self, tmp_path):
        path = tmp_path / "query.json"
        main(["generate", "--tables", "4", "-o", str(path)])
        with pytest.raises(SystemExit):
            main(["optimize", str(path), "--objectives", "carbon"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "--tables", "5", "--seed", "3", "-o", str(a)])
        main(["generate", "--tables", "5", "--seed", "3", "-o", str(b)])
        assert a.read_text() == b.read_text()
