"""Cost metric formulas (Steinbrunn et al.) and their composition rules."""

from __future__ import annotations

import math

import pytest

from repro.config import MULTI_OBJECTIVE, Objective
from repro.cost.metrics import (
    BNL_BLOCK_TUPLES,
    HASH_FACTOR,
    BufferSpaceMetric,
    ExecutionTimeMetric,
    make_metrics,
)
from repro.plans.operators import JoinAlgorithm
from repro.query.schema import Table

TABLE = Table("R", 1000)


class TestExecutionTime:
    metric = ExecutionTimeMetric()

    def test_scan_cost_is_rows(self):
        assert self.metric.scan_cost(TABLE, 1000.0) == 1000.0

    def test_nested_loop(self):
        cost = self.metric.join_cost(
            5.0, 7.0, 100.0, 200.0, 50.0, JoinAlgorithm.BLOCK_NESTED_LOOP, True, True
        )
        assert cost == 5.0 + 7.0 + 100.0 * 200.0

    def test_hash(self):
        cost = self.metric.join_cost(
            0.0, 0.0, 100.0, 200.0, 50.0, JoinAlgorithm.HASH, True, True
        )
        assert cost == pytest.approx(HASH_FACTOR * 300.0)

    def test_sort_merge_both_sorts(self):
        cost = self.metric.join_cost(
            0.0, 0.0, 100.0, 200.0, 50.0, JoinAlgorithm.SORT_MERGE, True, True
        )
        expected = 100 * math.log2(100) + 200 * math.log2(200) + 300
        assert cost == pytest.approx(expected)

    def test_sort_merge_skips_presorted(self):
        both = self.metric.join_cost(
            0.0, 0.0, 100.0, 200.0, 50.0, JoinAlgorithm.SORT_MERGE, True, True
        )
        left_sorted = self.metric.join_cost(
            0.0, 0.0, 100.0, 200.0, 50.0, JoinAlgorithm.SORT_MERGE, False, True
        )
        neither = self.metric.join_cost(
            0.0, 0.0, 100.0, 200.0, 50.0, JoinAlgorithm.SORT_MERGE, False, False
        )
        assert neither < left_sorted < both
        assert neither == 300.0

    def test_additive_in_children(self):
        base = self.metric.join_cost(
            0.0, 0.0, 10.0, 10.0, 5.0, JoinAlgorithm.HASH, True, True
        )
        shifted = self.metric.join_cost(
            3.0, 4.0, 10.0, 10.0, 5.0, JoinAlgorithm.HASH, True, True
        )
        assert shifted == pytest.approx(base + 7.0)

    def test_tiny_input_sort_safe(self):
        cost = self.metric.join_cost(
            0.0, 0.0, 1.0, 1.0, 1.0, JoinAlgorithm.SORT_MERGE, True, True
        )
        assert cost > 0


class TestBufferSpace:
    metric = BufferSpaceMetric()

    def test_scan_buffer(self):
        assert self.metric.scan_cost(TABLE, 1000.0) == 1.0

    def test_nested_loop_block(self):
        cost = self.metric.join_cost(
            1.0, 1.0, 1e6, 1e6, 1.0, JoinAlgorithm.BLOCK_NESTED_LOOP, True, True
        )
        assert cost == BNL_BLOCK_TUPLES

    def test_hash_buffers_build_side(self):
        cost = self.metric.join_cost(
            1.0, 1.0, 100.0, 500.0, 1.0, JoinAlgorithm.HASH, True, True
        )
        assert cost == 500.0

    def test_sort_merge_buffers_unsorted_inputs(self):
        both = self.metric.join_cost(
            1.0, 1.0, 100.0, 500.0, 1.0, JoinAlgorithm.SORT_MERGE, True, True
        )
        assert both == 600.0
        one = self.metric.join_cost(
            1.0, 1.0, 100.0, 500.0, 1.0, JoinAlgorithm.SORT_MERGE, False, True
        )
        assert one == 500.0
        none = self.metric.join_cost(
            1.0, 1.0, 100.0, 500.0, 1.0, JoinAlgorithm.SORT_MERGE, False, False
        )
        assert none == 1.0

    def test_max_composition(self):
        cost = self.metric.join_cost(
            900.0, 50.0, 10.0, 10.0, 1.0, JoinAlgorithm.HASH, True, True
        )
        assert cost == 900.0


class TestMakeMetrics:
    def test_single(self):
        metrics = make_metrics((Objective.EXECUTION_TIME,))
        assert len(metrics) == 1
        assert isinstance(metrics[0], ExecutionTimeMetric)

    def test_multi(self):
        metrics = make_metrics(MULTI_OBJECTIVE)
        assert [m.name for m in metrics] == ["time", "buffer"]
