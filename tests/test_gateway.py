"""The sharded optimizer gateway: routing, coalescing, stats, lifecycle."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.cluster.executors import SerialPartitionExecutor
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.service import (
    ShardedOptimizerGateway,
    canonicalize,
    fingerprint,
    remap_plan,
)
from repro.service.service import OptimizerService
from tests.test_service import permute_query, shuffled

#: Generous upper bound for anything a test thread waits on; a healthy run
#: never comes close, a deadlocked run fails instead of hanging CI.
WAIT_S = 30.0


class GatedSerialExecutor:
    """Serial executor that blocks every run until ``gate`` is set.

    Lets tests hold an optimization in flight deliberately, so concurrent
    requests for the same fingerprint *must* coalesce rather than racing
    the leader to a cache hit.  ``calls`` counts DP runs (``map_partitions``
    invocations) — the ground truth the coalescing counters are checked
    against.
    """

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()
        self._inner = SerialPartitionExecutor()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=WAIT_S), "test gate never opened"
        return self._inner.map_partitions(query, n_partitions, settings)


class FailingGatedExecutor:
    """Blocks until released, then fails — for leader-error propagation."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate

    def map_partitions(self, query, n_partitions, settings):
        assert self.gate.wait(timeout=WAIT_S), "test gate never opened"
        raise ConnectionError("worker fleet unreachable")


class RecordingExecutor(SerialPartitionExecutor):
    """Serial executor that records whether the gateway closed it."""

    def __init__(self) -> None:
        self.closed = False

    def close(self) -> None:
        self.closed = True


def _poll(predicate, timeout: float = WAIT_S) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestRouting:
    def test_shard_in_range_and_deterministic(self):
        generator = SteinbrunnGenerator(33)
        gateway = ShardedOptimizerGateway(n_shards=5, n_workers=2)
        settings = gateway.settings
        for __ in range(20):
            key = fingerprint(generator.query(5), settings, 2)
            shard = gateway.shard_for(key)
            assert 0 <= shard < 5
            assert gateway.shard_for(key) == shard
        gateway.close()

    def test_range_partitioning_is_monotone(self):
        # Contiguous ranges: ordering keys by their routing prefix orders
        # their shards too.
        gateway = ShardedOptimizerGateway(n_shards=4, n_workers=2)
        keys = [f"{value:08x}" for value in (0, 1, 2**30, 2**31, 2**32 - 1)]
        shards = [gateway.shard_for(key) for key in sorted(keys)]
        assert shards == sorted(shards)
        assert shards[0] == 0 and shards[-1] == 3
        gateway.close()

    def test_rejects_silly_shard_counts(self):
        with pytest.raises(ValueError):
            ShardedOptimizerGateway(n_shards=0)
        with pytest.raises(ValueError):
            ShardedOptimizerGateway(n_shards=2, gateway_threads=0)


class TestGatewayCorrectness:
    def test_single_requests_match_serial(self):
        generator = SteinbrunnGenerator(34)
        queries = [generator.query(6) for __ in range(4)]
        with ShardedOptimizerGateway(n_shards=3, n_workers=4) as gateway:
            for query in queries:
                result = gateway.optimize(query)
                assert not result.cached
                assert result.best.cost == best_plan(optimize_serial(query)).cost
            for query in queries:
                assert gateway.optimize(query).cached

    def test_batch_matches_serial_and_dedups(self):
        generator = SteinbrunnGenerator(35)
        query = generator.query(6)
        relabeled = permute_query(query, shuffled(6, seed=5))
        other = generator.query(6)
        with ShardedOptimizerGateway(n_shards=4, n_workers=4) as gateway:
            results = gateway.optimize_batch([query, other, query, relabeled])
            assert [result.cached for result in results] == [
                False,
                False,
                True,
                True,
            ]
            assert results[3].fingerprint == results[0].fingerprint
            assert results[0].best.cost == best_plan(optimize_serial(query)).cost
            assert results[1].best.cost == best_plan(optimize_serial(other)).cost
            assert results[2].best.cost == results[0].best.cost
            assert results[3].best.cost[0] == pytest.approx(
                best_plan(optimize_serial(relabeled)).cost[0], rel=1e-9
            )
            stats = gateway.stats()
            assert stats.optimizations == 2
            assert stats.requests == 4

    def test_isomorphic_hit_remapped_to_each_numbering(self):
        query = SteinbrunnGenerator(36).query(7)
        relabeled = permute_query(query, shuffled(7, seed=8))
        with ShardedOptimizerGateway(n_shards=2, n_workers=4) as gateway:
            gateway.optimize(query)
            served = gateway.optimize(relabeled)
            assert served.cached
            assert served.best.mask == relabeled.all_tables_mask
            reference = best_plan(optimize_serial(relabeled))
            assert served.best.cost[0] == pytest.approx(reference.cost[0], rel=1e-9)

    def test_shards_partition_the_cache(self):
        # No fingerprint is resident on more than one shard.
        generator = SteinbrunnGenerator(37)
        queries = [generator.query(5) for __ in range(8)]
        with ShardedOptimizerGateway(n_shards=4, n_workers=2) as gateway:
            gateway.optimize_batch(queries)
            entries = sum(len(shard.cache) for shard in gateway.shards)
            unique = len({fingerprint(q, gateway.settings, 2) for q in queries})
            assert entries == unique


class TestCoalescing:
    N_THREADS = 8

    def _run_concurrent(self, gateway, variants):
        results: list = [None] * len(variants)
        errors: list = [None] * len(variants)
        barrier = threading.Barrier(len(variants))

        def work(index):
            barrier.wait(timeout=WAIT_S)
            try:
                results[index] = gateway.optimize(variants[index])
            except BaseException as error:  # noqa: BLE001 - surfaced in asserts
                errors[index] = error

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(len(variants))
        ]
        for thread in threads:
            thread.start()
        return threads, results, errors

    def test_concurrent_isomorphic_misses_share_one_run(self):
        """The acceptance stress test: >= 8 concurrent threads, isomorphic
        queries, exactly one DP run, bit-identical frontiers for everyone."""
        base = SteinbrunnGenerator(38).query(7)
        variants = [base] + [
            permute_query(base, shuffled(7, seed=seed))
            for seed in range(self.N_THREADS - 1)
        ]
        gate = threading.Event()
        executors: list[GatedSerialExecutor] = []

        def factory():
            executor = GatedSerialExecutor(gate)
            executors.append(executor)
            return executor

        with ShardedOptimizerGateway(
            n_shards=4, n_workers=4, executor_factory=factory
        ) as gateway:
            threads, results, errors = self._run_concurrent(gateway, variants)
            # The leader is now blocked inside the DP; every other thread
            # must have registered as a follower before we open the gate.
            assert _poll(
                lambda: gateway.stats().coalesced == self.N_THREADS - 1
            ), f"stalled coalescing: {gateway.stats()}"
            gate.set()
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
            assert errors == [None] * self.N_THREADS

            stats = gateway.stats()
            assert stats.optimizations == 1, stats
            assert sum(executor.calls for executor in executors) == 1
            assert stats.coalesced == self.N_THREADS - 1
            assert stats.requests == self.N_THREADS
            assert stats.in_flight == 0
            assert stats.peak_in_flight == self.N_THREADS
            # Exactly one requester saw a fresh run; everyone else was
            # coalesced (reclassified as cache hits).
            assert sum(not result.cached for result in results) == 1
            assert stats.hits == self.N_THREADS - 1

            # Zero frontier mismatches: remapping every requester's frontier back
            # to canonical numbering must reproduce one identical plan list.
            canonical_frontiers = {
                tuple(
                    remap_plan(plan, canonicalize(variant).numbering)
                    for plan in result.plans
                )
                for variant, result in zip(variants, results)
            }
            assert len(canonical_frontiers) == 1

    def test_exactly_one_run_per_unique_fingerprint_without_gating(self):
        # The singleflight invariant holds under free-running concurrency
        # too: optimizations == unique fingerprints, whatever the timing.
        generator = SteinbrunnGenerator(39)
        unique = [generator.query(6) for __ in range(3)]
        variants = [unique[index % len(unique)] for index in range(12)]
        with ShardedOptimizerGateway(n_shards=4, n_workers=4) as gateway:
            threads, results, errors = self._run_concurrent(gateway, variants)
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
            assert errors == [None] * len(variants)
            stats = gateway.stats()
            assert stats.optimizations == len(unique)
            for query, result in zip(variants, results):
                assert result.best.cost == best_plan(optimize_serial(query)).cost

    def test_coalescing_survives_a_cache_that_retains_nothing(self):
        # Regression: with cache_capacity=0 (the supported cache-disabled
        # mode) the leader's peek finds no entry; followers must be served
        # by relabeling the leader's own result — one DP run, not N.
        base = SteinbrunnGenerator(41).query(7)
        variants = [base] + [
            permute_query(base, shuffled(7, seed=seed)) for seed in range(3)
        ]
        gate = threading.Event()
        executors: list[GatedSerialExecutor] = []

        def factory():
            executor = GatedSerialExecutor(gate)
            executors.append(executor)
            return executor

        with ShardedOptimizerGateway(
            n_shards=2, n_workers=4, executor_factory=factory, cache_capacity=0
        ) as gateway:
            threads, results, errors = self._run_concurrent(gateway, variants)
            assert _poll(lambda: gateway.stats().coalesced == len(variants) - 1)
            gate.set()
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
            assert errors == [None] * len(variants)
            stats = gateway.stats()
            assert stats.optimizations == 1, stats
            assert sum(executor.calls for executor in executors) == 1
            reference = best_plan(optimize_serial(base)).cost[0]
            for variant, result in zip(variants, results):
                assert result.best.mask == variant.all_tables_mask
                assert result.best.cost[0] == pytest.approx(reference, rel=1e-9)
            # Nothing was retained — the next identical request runs afresh.
            assert sum(len(shard.cache) for shard in gateway.shards) == 0

    def test_leader_failure_propagates_to_followers(self):
        query = SteinbrunnGenerator(40).query(6)
        gate = threading.Event()
        with ShardedOptimizerGateway(
            n_shards=2, n_workers=2, executor_factory=lambda: FailingGatedExecutor(gate)
        ) as gateway:
            threads, results, errors = self._run_concurrent(gateway, [query, query])
            assert _poll(lambda: gateway.stats().coalesced == 1)
            gate.set()
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
            assert results == [None, None]
            assert all(isinstance(error, ConnectionError) for error in errors)
            # The failed flight was deregistered: a retry leads afresh
            # rather than waiting on a dead leader.
            gate.clear()

    def test_batch_coalesces_against_inflight_single_request(self):
        query = SteinbrunnGenerator(42).query(6)
        gate = threading.Event()
        executors: list[GatedSerialExecutor] = []

        def factory():
            executor = GatedSerialExecutor(gate)
            executors.append(executor)
            return executor

        with ShardedOptimizerGateway(
            n_shards=2, n_workers=2, executor_factory=factory
        ) as gateway:
            single: list = [None]
            leader = threading.Thread(
                target=lambda: single.__setitem__(0, gateway.optimize(query))
            )
            leader.start()
            # Leader in flight; a batch containing the same query must ride
            # along instead of running a second DP.
            assert _poll(lambda: sum(e.calls for e in executors) == 1)
            batch_results: list = [None]
            follower = threading.Thread(
                target=lambda: batch_results.__setitem__(
                    0, gateway.optimize_batch([query])
                )
            )
            follower.start()
            assert _poll(lambda: gateway.stats().coalesced == 1)
            gate.set()
            leader.join(timeout=WAIT_S)
            follower.join(timeout=WAIT_S)
            assert not leader.is_alive() and not follower.is_alive()
            assert sum(executor.calls for executor in executors) == 1
            assert batch_results[0][0].cached
            assert batch_results[0][0].best.cost == single[0].best.cost


class TestAbandonedFlights:
    """Followers that stop waiting must never wedge leaders or leak gauges."""

    def test_follower_timeout_abandons_cleanly(self):
        query = SteinbrunnGenerator(46).query(6)
        gate = threading.Event()
        executors: list[GatedSerialExecutor] = []

        def factory():
            executor = GatedSerialExecutor(gate)
            executors.append(executor)
            return executor

        with ShardedOptimizerGateway(
            n_shards=2, n_workers=2, executor_factory=factory
        ) as gateway:
            box: list = [None]
            leader = threading.Thread(
                target=lambda: box.__setitem__(0, gateway.optimize(query))
            )
            leader.start()
            assert _poll(lambda: sum(e.calls for e in executors) == 1)
            # The follower gives up long before the gated leader finishes.
            with pytest.raises(TimeoutError, match="did not complete"):
                gateway.optimize(query, timeout_s=0.05)
            # Abandonment released the follower's admission immediately …
            assert gateway.stats().in_flight == 1  # only the leader remains
            # … and the leader is not wedged: open the gate, it completes.
            gate.set()
            leader.join(timeout=WAIT_S)
            assert not leader.is_alive()
            assert box[0] is not None and not box[0].cached
            stats = gateway.stats()
            assert stats.in_flight == 0
            assert stats.optimizations == 1
            # The timed-out requester retries into a plain cache hit.
            assert gateway.optimize(query, timeout_s=0.05).cached

    def test_mass_abandonment_under_leader_failure_leaks_nothing(self):
        """Stress: a herd of followers, some timing out, some staying, while
        the leader ultimately *fails* — ``in_flight`` must return to 0 and a
        retry must lead a fresh flight."""
        query = SteinbrunnGenerator(47).query(6)
        gate = threading.Event()
        with ShardedOptimizerGateway(
            n_shards=2,
            n_workers=2,
            executor_factory=lambda: FailingGatedExecutor(gate),
        ) as gateway:
            n_threads = 8
            outcomes: list = [None] * n_threads
            barrier = threading.Barrier(n_threads)

            def work(index):
                barrier.wait(timeout=WAIT_S)
                try:
                    # Half the followers abandon almost immediately; the
                    # leader (index 0 usually) and the rest wait it out.
                    timeout = 0.02 if index % 2 else None
                    outcomes[index] = gateway.optimize(query, timeout_s=timeout)
                except BaseException as error:  # noqa: BLE001 - asserted below
                    outcomes[index] = error

            threads = [
                threading.Thread(target=work, args=(index,))
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            assert _poll(lambda: gateway.stats().coalesced >= 1)
            # Let the abandoning half time out before the leader fails.
            assert _poll(
                lambda: sum(
                    isinstance(outcome, TimeoutError) for outcome in outcomes
                )
                > 0
            )
            gate.set()
            for thread in threads:
                thread.join(timeout=WAIT_S)
                assert not thread.is_alive()
            # Every thread saw either a timeout (abandoned) or the leader's
            # failure (stayed) — and nothing hangs or half-succeeds.
            assert all(
                isinstance(outcome, (TimeoutError, ConnectionError))
                for outcome in outcomes
            ), outcomes
            assert any(isinstance(o, ConnectionError) for o in outcomes)
            stats = gateway.stats()
            assert stats.in_flight == 0, "in-flight gauge leaked"
            assert stats.peak_in_flight == n_threads
            # The failed flight was deregistered: a retry leads afresh.
            gate.clear()
            retry: list = [None]
            fresh = threading.Thread(
                target=lambda: retry.__setitem__(
                    0,
                    _catch(lambda: gateway.optimize(query)),
                )
            )
            fresh.start()
            gate.set()
            fresh.join(timeout=WAIT_S)
            assert not fresh.is_alive()
            assert isinstance(retry[0], ConnectionError)
            assert gateway.stats().in_flight == 0

    def test_timeout_irrelevant_when_leader_is_fast(self):
        query = SteinbrunnGenerator(49).query(5)
        with ShardedOptimizerGateway(n_shards=2, n_workers=2) as gateway:
            assert not gateway.optimize(query, timeout_s=WAIT_S).cached
            assert gateway.optimize(query, timeout_s=0.0001).cached


def _catch(call):
    try:
        return call()
    except BaseException as error:  # noqa: BLE001 - inspected by the test
        return error


class TestLifecycleAndStats:
    def test_close_fans_out_to_shard_executors(self):
        executors: list[RecordingExecutor] = []

        def factory():
            executor = RecordingExecutor()
            executors.append(executor)
            return executor

        gateway = ShardedOptimizerGateway(n_shards=3, executor_factory=factory)
        assert len(executors) == 3
        gateway.close()
        assert all(executor.closed for executor in executors)
        gateway.close()  # idempotent

    def test_close_waits_for_inflight_requests(self):
        # Tearing a shard executor down under a running DP would fail the
        # request (and a self-healing pool could resurrect workers after
        # close): close must drain admitted requests first.
        gate = threading.Event()
        executors: list[GatedSerialExecutor] = []

        def factory():
            executor = GatedSerialExecutor(gate)
            executors.append(executor)
            return executor

        gateway = ShardedOptimizerGateway(
            n_shards=2, n_workers=2, executor_factory=factory
        )
        query = SteinbrunnGenerator(48).query(6)
        box: list = [None]
        worker = threading.Thread(
            target=lambda: box.__setitem__(0, gateway.optimize(query))
        )
        worker.start()
        assert _poll(lambda: sum(executor.calls for executor in executors) == 1)
        closer = threading.Thread(target=gateway.close)
        closer.start()
        time.sleep(0.05)
        assert closer.is_alive(), "close returned while a request was in flight"
        gate.set()
        worker.join(timeout=WAIT_S)
        closer.join(timeout=WAIT_S)
        assert not worker.is_alive() and not closer.is_alive()
        assert box[0] is not None and not box[0].cached

    def test_requests_rejected_after_close(self):
        gateway = ShardedOptimizerGateway(n_shards=2, n_workers=2)
        query = SteinbrunnGenerator(43).query(4)
        gateway.close()
        with pytest.raises(RuntimeError, match="closed"):
            gateway.optimize(query)
        with pytest.raises(RuntimeError, match="closed"):
            gateway.optimize_batch([query])

    def test_context_manager_closes(self):
        executors: list[RecordingExecutor] = []
        with ShardedOptimizerGateway(
            n_shards=2,
            executor_factory=lambda: executors.append(RecordingExecutor())
            or executors[-1],
        ):
            pass
        assert all(executor.closed for executor in executors)

    def test_stats_aggregate_per_shard_counters(self):
        generator = SteinbrunnGenerator(44)
        queries = [generator.query(5) for __ in range(6)]
        with ShardedOptimizerGateway(n_shards=3, n_workers=2) as gateway:
            gateway.optimize_batch(queries)
            gateway.optimize_batch(queries)
            stats = gateway.stats()
            assert stats.hits == sum(shard.cache.hits for shard in stats.shards)
            assert stats.misses == sum(
                shard.cache.misses for shard in stats.shards
            )
            assert stats.requests == 12
            assert stats.misses == stats.optimizations == len(
                {fingerprint(q, gateway.settings, 2) for q in queries}
            )
            assert 0.0 < stats.hit_rate < 1.0
            assert stats.in_flight == 0

    def test_gateway_matches_single_service_results(self):
        # The gateway is a routing layer, not a different optimizer: its
        # answers are exactly a single service's answers.
        generator = SteinbrunnGenerator(45)
        queries = [generator.query(6) for __ in range(4)]
        with ShardedOptimizerGateway(n_shards=4, n_workers=4) as gateway:
            gateway_results = gateway.optimize_batch(queries)
        with OptimizerService(n_workers=4) as service:
            service_results = service.optimize_batch(queries)
        for via_gateway, via_service in zip(gateway_results, service_results):
            assert via_gateway.fingerprint == via_service.fingerprint
            assert via_gateway.plans == via_service.plans
            assert via_gateway.n_partitions == via_service.n_partitions


class TestServeBatchCLI:
    def test_gateway_serve_batch_json(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"q{index}.json"
            main(
                ["generate", "--tables", "6", "--seed", str(index), "-o", str(path)]
            )
            paths.append(str(path))
        capsys.readouterr()
        assert (
            main(
                [
                    "serve-batch",
                    *paths,
                    paths[0],
                    "--shards",
                    "2",
                    "--gateway-threads",
                    "4",
                    "--workers",
                    "4",
                    "--repeat",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        gateway = payload["gateway"]
        assert gateway["requests"] == 8
        assert gateway["optimizations"] == 3
        assert gateway["coalesced"] == 1  # in-batch duplicate of q0
        assert len(gateway["shards"]) == 2
        cached_flags = [
            result["cached"]
            for round_payload in payload["rounds"]
            for result in round_payload["results"]
        ]
        assert cached_flags == [False, False, False, True, True, True, True, True]

    def test_gateway_threads_requires_shards(self, tmp_path):
        path = tmp_path / "q.json"
        main(["generate", "--tables", "4", "-o", str(path)])
        with pytest.raises(SystemExit):
            main(["serve-batch", str(path), "--gateway-threads", "2"])
