"""Network model and simulated-cluster timing composition."""

from __future__ import annotations

import pytest

from repro.algorithms.mpq import optimize_mpq
from repro.cluster.network import NetworkAccountant, NetworkModel
from repro.cluster.serialization import plans_bytes, task_bytes
from repro.cluster.simulator import (
    ClusterModel,
    simulate_mpq_run,
    worker_compute_seconds,
)
from repro.config import OptimizerSettings
from repro.core.master import optimize_parallel
from repro.core.worker import WorkerStats
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def query():
    return SteinbrunnGenerator(2).query(6)


class TestNetworkModel:
    def test_latency_only_for_empty_message(self):
        model = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1e6)
        assert model.transfer_seconds(0) == 0.001

    def test_bandwidth_term(self):
        model = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e6)
        assert model.transfer_seconds(2_000_000) == pytest.approx(2.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0.0)


class TestAccountant:
    def test_accumulates(self):
        accountant = NetworkAccountant()
        accountant.send(100)
        accountant.send(200)
        assert accountant.total_bytes == 300
        assert accountant.n_messages == 2

    def test_send_returns_time(self):
        model = NetworkModel(latency_s=0.5, bandwidth_bytes_per_s=1e3)
        accountant = NetworkAccountant(model=model)
        assert accountant.send(500) == pytest.approx(1.0)

    def test_send_many(self):
        accountant = NetworkAccountant()
        total = accountant.send_many([10, 20, 30])
        assert accountant.total_bytes == 60
        assert total == pytest.approx(
            sum(accountant.model.transfer_seconds(b) for b in (10, 20, 30))
        )


class TestClusterModel:
    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            ClusterModel(task_setup_s=-1.0)

    def test_worker_compute_formula(self):
        cluster = ClusterModel(
            seconds_per_plan=1.0, seconds_per_split=10.0, seconds_per_result=100.0
        )
        stats = WorkerStats(
            partition_id=0,
            n_partitions=1,
            n_constraints=0,
            admissible_results=1,
            splits_considered=2,
            plans_considered=3,
        )
        assert worker_compute_seconds(cluster, stats) == pytest.approx(123.0)


class TestSimulatedTiming:
    def test_bytes_match_message_inventory(self, query):
        settings = OptimizerSettings()
        result = optimize_parallel(query, 4, settings)
        timing = simulate_mpq_run(ClusterModel(), query, result)
        expected = 4 * task_bytes(query) + sum(
            plans_bytes(r.plans) for r in result.partition_results
        )
        assert timing.network_bytes == expected
        assert timing.network_messages == 8

    def test_dispatch_linear_in_workers(self, query):
        settings = OptimizerSettings()
        cluster = ClusterModel()
        small = simulate_mpq_run(cluster, query, optimize_parallel(query, 2, settings))
        large = simulate_mpq_run(cluster, query, optimize_parallel(query, 8, settings))
        assert large.dispatch_s == pytest.approx(4 * small.dispatch_s)

    def test_total_decomposition(self, query):
        settings = OptimizerSettings()
        result = optimize_parallel(query, 4, settings)
        timing = simulate_mpq_run(ClusterModel(), query, result)
        assert timing.total_s == pytest.approx(
            timing.workers_done_s + timing.collect_s + timing.master_prune_s
        )
        assert timing.total_ms == pytest.approx(timing.total_s * 1e3)

    def test_workers_done_after_dispatch(self, query):
        settings = OptimizerSettings()
        result = optimize_parallel(query, 4, settings)
        cluster = ClusterModel()
        timing = simulate_mpq_run(cluster, query, result)
        assert timing.workers_done_s >= timing.dispatch_s + cluster.task_setup_s

    def test_max_worker_compute(self, query):
        settings = OptimizerSettings()
        result = optimize_parallel(query, 4, settings)
        timing = simulate_mpq_run(ClusterModel(), query, result)
        assert timing.max_worker_compute_s == max(timing.worker_compute_s)
        assert len(timing.worker_compute_s) == 4

    def test_setup_dominates_tiny_queries(self):
        """Figure 1's flat MPQ curves: overhead hides tiny DP times."""
        query = SteinbrunnGenerator(3).query(4)
        report_1 = optimize_mpq(query, 1)
        report_4 = optimize_mpq(query, 4)
        # More workers cannot make a tiny query much faster...
        assert report_4.simulated_time_ms >= report_1.simulated_time_ms * 0.5
        # ...because setup dominates compute.
        assert report_1.simulated.workers_done_s > report_1.max_worker_time_ms / 1e3
