"""Analytic scaling predictions vs executed runs."""

from __future__ import annotations

import pytest

from repro.algorithms.mpq import optimize_mpq
from repro.bench.analytic import (
    AnalyticWorkerModel,
    bushy_splits_executed,
    measure_candidates_per_split,
    paper_scale_fig2,
    predict_point,
    predict_series,
)
from repro.cluster.simulator import DEFAULT_CLUSTER
from repro.config import OptimizerSettings, PlanSpace
from repro.core.worker import optimize_partition
from repro.query.generator import SteinbrunnGenerator


class TestCountersMatchExecution:
    @pytest.mark.parametrize("n,l", [(6, 0), (8, 2), (8, 4), (10, 3)])
    def test_linear_counters_exact(self, n, l):
        query = SteinbrunnGenerator(81).query(n)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        stats = optimize_partition(query, 0, 1 << l, settings).stats
        model = AnalyticWorkerModel(n, l, PlanSpace.LINEAR)
        assert model.splits_considered == stats.splits_considered
        assert model.admissible_results == stats.admissible_results

    @pytest.mark.parametrize("n,l", [(6, 0), (6, 2), (9, 1), (9, 3)])
    def test_bushy_counters_exact(self, n, l):
        query = SteinbrunnGenerator(82).query(n)
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        stats = optimize_partition(query, 0, 1 << l, settings).stats
        assert bushy_splits_executed(n, l) == stats.splits_considered
        model = AnalyticWorkerModel(n, l, PlanSpace.BUSHY)
        assert model.admissible_results == stats.admissible_results


class TestPredictedPoints:
    def test_memory_matches_execution(self):
        query = SteinbrunnGenerator(83).query(8)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        report = optimize_mpq(query, 4, settings)
        predicted = predict_point(8, 4, PlanSpace.LINEAR)
        assert predicted.memory_relations == report.max_worker_memory_relations

    def test_network_matches_execution_star(self):
        """Star queries have n-1 predicates, matching the byte shortcut."""
        query = SteinbrunnGenerator(84).query(8)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        report = optimize_mpq(query, 8, settings)
        predicted = predict_point(8, 8, PlanSpace.LINEAR)
        assert predicted.network_bytes == report.network_bytes

    def test_simulated_time_close(self):
        """Predicted time within 20% of the executed simulation (the only
        approximation is candidates-per-split)."""
        query = SteinbrunnGenerator(85).query(10)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        for workers in (1, 4, 16):
            report = optimize_mpq(query, workers, settings, DEFAULT_CLUSTER)
            predicted = predict_point(10, workers, PlanSpace.LINEAR)
            assert predicted.time_ms == pytest.approx(
                report.simulated_time_ms, rel=0.2
            )

    def test_rejects_invalid_workers(self):
        with pytest.raises(ValueError):
            predict_point(8, 3, PlanSpace.LINEAR)
        with pytest.raises(ValueError):
            predict_point(8, 64, PlanSpace.LINEAR)


class TestPredictedSeries:
    def test_series_length(self):
        series = predict_series(8, PlanSpace.LINEAR, max_workers=128)
        assert [p.workers for p in series.points] == [1, 2, 4, 8, 16]

    def test_worker_time_shrinks_by_three_quarters(self):
        series = predict_series(20, PlanSpace.LINEAR, max_workers=128)
        for previous, current in zip(series.points, series.points[1:]):
            # Slightly better than 3/4: constraints also cut admissible
            # last-table choices, the paper's "second mechanism".
            ratio = current.worker_time_ms / previous.worker_time_ms
            assert 0.70 <= ratio <= 0.78

    def test_bushy_memory_shrinks_by_seven_eighths(self):
        series = predict_series(
            15, PlanSpace.BUSHY, max_workers=32,
            candidates_per_split=3.0,
        )
        for previous, current in zip(series.points, series.points[1:]):
            ratio = current.memory_relations / previous.memory_relations
            assert 0.86 <= ratio <= 0.89


class TestPaperScale:
    def test_paper_series_shapes(self):
        series = paper_scale_fig2()
        labels = [s.label for s in series]
        assert labels == [
            "analytic linear 20",
            "analytic linear 24",
            "analytic bushy 15",
            "analytic bushy 18",
        ]
        # Linear 20 at one worker lands in the paper's 10^4-10^5 ms band.
        linear20 = series[0].points[0]
        assert 1e4 < linear20.time_ms < 1e5
        # And parallelization yields the paper's order-of-magnitude range of
        # speedups at 128 workers.
        at_128 = series[1].points[7]
        assert at_128.workers == 128
        speedup = series[1].points[0].time_ms / at_128.time_ms
        assert 5 < speedup < 12
