"""Serial DP vs brute-force plan enumeration — the ground-truth anchor."""

from __future__ import annotations

import pytest

from repro.config import OptimizerSettings, PlanSpace
from repro.core.exhaustive import (
    all_leftdeep_cost_vectors,
    count_bushy_plans_enumerated,
    iter_leftdeep_plans,
    min_cost_bushy,
    min_cost_leftdeep,
    n_bushy_trees,
    n_leftdeep_orders,
)
from repro.core.serial import best_plan, optimize_serial
from repro.cost.costmodel import CostModel
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


SEEDS = [1, 2, 3, 4, 5]
KINDS = [JoinGraphKind.STAR, JoinGraphKind.CHAIN, JoinGraphKind.CYCLE]


class TestPlanSpaceSizes:
    def test_leftdeep_counts(self):
        assert n_leftdeep_orders(4) == 24
        assert n_leftdeep_orders(6) == 720

    def test_bushy_tree_counts(self):
        # n! * Catalan(n-1): 3 tables -> 6 * 2 = 12; 4 -> 24 * 5 = 120.
        assert n_bushy_trees(3) == 12
        assert n_bushy_trees(4) == 120

    def test_enumerated_leftdeep_plan_count(self):
        query = SteinbrunnGenerator(9).query(4)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        model = CostModel(query, settings)
        plans = list(iter_leftdeep_plans(query, model))
        assert len(plans) == n_leftdeep_orders(4)

    def test_enumerated_bushy_plan_count_single_operator(self):
        query = SteinbrunnGenerator(9).query(4)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        assert count_bushy_plans_enumerated(query, settings) == n_bushy_trees(4)


class TestLeftDeepOptimality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dp_matches_bruteforce_star(self, seed):
        query = SteinbrunnGenerator(seed).query(5, JoinGraphKind.STAR)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_leftdeep(query, settings))

    @pytest.mark.parametrize("kind", KINDS)
    def test_dp_matches_bruteforce_topologies(self, kind):
        query = SteinbrunnGenerator(17).query(5, kind)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_leftdeep(query, settings))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dp_six_tables(self, seed):
        query = SteinbrunnGenerator(seed + 100).query(6)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_leftdeep(query, settings))

    def test_dp_single_operator(self):
        query = SteinbrunnGenerator(31).query(5)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_leftdeep(query, settings))

    def test_dp_plan_is_left_deep(self):
        query = SteinbrunnGenerator(32).query(6)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        assert best_plan(optimize_serial(query, settings)).is_left_deep()


class TestBushyOptimality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dp_matches_bruteforce(self, seed):
        query = SteinbrunnGenerator(seed).query(5)
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_bushy(query, settings))

    @pytest.mark.parametrize("kind", KINDS)
    def test_dp_matches_bruteforce_topologies(self, kind):
        query = SteinbrunnGenerator(18).query(5, kind)
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        dp_best = best_plan(optimize_serial(query, settings))
        assert dp_best.cost[0] == pytest.approx(min_cost_bushy(query, settings))

    def test_bushy_never_worse_than_leftdeep(self):
        for seed in SEEDS:
            query = SteinbrunnGenerator(seed).query(6)
            linear = OptimizerSettings(plan_space=PlanSpace.LINEAR)
            bushy = OptimizerSettings(plan_space=PlanSpace.BUSHY)
            linear_best = best_plan(optimize_serial(query, linear)).cost[0]
            bushy_best = best_plan(optimize_serial(query, bushy)).cost[0]
            assert bushy_best <= linear_best * (1 + 1e-9)


class TestExhaustiveHelpers:
    def test_cost_vectors_count(self):
        query = SteinbrunnGenerator(3).query(4)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        vectors = all_leftdeep_cost_vectors(query, settings)
        assert len(vectors) == 24
        assert all(len(v) == 1 for v in vectors)
