"""PlanCache boundary behavior: capacity 0/1, accounting, concurrency."""

from __future__ import annotations

import random
import threading

import pytest

from repro.query.generator import SteinbrunnGenerator
from repro.service import OptimizerService, PlanCache


class TestCapacityZero:
    """``capacity=0`` is the supported cache-disabled mode."""

    def test_rejects_negative_capacity_only(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)
        PlanCache(capacity=0)
        PlanCache(capacity=1)

    def test_stores_nothing_and_counts_drops_as_evictions(self):
        cache: PlanCache[str] = PlanCache(capacity=0)
        for index in range(5):
            cache.put(f"k{index}", "value")
        assert len(cache) == 0
        assert cache.stats.evictions == 5
        assert cache.get("k0") is None
        assert cache.peek("k0") is None
        assert cache.probe("k0") is None
        assert "k0" not in cache
        assert cache.stats.misses == 1  # only the get counted
        assert cache.stats.hits == 0

    def test_service_works_uncached(self):
        generator = SteinbrunnGenerator(81)
        query = generator.query(5)
        with OptimizerService(n_workers=2, cache_capacity=0) as service:
            first = service.optimize(query)
            second = service.optimize(query)
            assert not first.cached and not second.cached
            assert first.best.cost == second.best.cost
            assert len(service.cache) == 0

    def test_uncached_batch_serves_duplicates_from_the_fresh_run(self):
        # Duplicates within a batch are still deduplicated (one DP run) and
        # served by relabeling the representative's result — no cache entry
        # exists to serve them from.
        generator = SteinbrunnGenerator(82)
        query = generator.query(5)
        with OptimizerService(n_workers=2, cache_capacity=0) as service:
            results = service.optimize_batch([query, query, query])
            assert [result.cached for result in results] == [False, True, True]
            assert len({result.fingerprint for result in results}) == 1
            for result in results[1:]:
                assert result.best.cost == results[0].best.cost
                assert result.plans == results[0].plans


class TestCapacityOne:
    def test_single_slot_lru(self):
        cache: PlanCache[int] = PlanCache(capacity=1)
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert cache.get("a") is None  # evicted
        assert cache.get("b") == 2

    def test_refreshing_the_only_entry_never_evicts(self):
        cache: PlanCache[int] = PlanCache(capacity=1)
        cache.put("a", 1)
        for value in range(5):
            cache.put("a", value)
        assert cache.stats.evictions == 0
        assert cache.get("a") == 4


class TestAccountingInterleavings:
    def test_eviction_counts_under_interleaved_put_and_reclassify(self):
        # Reclassification moves counters between hit/miss buckets; it must
        # never disturb eviction accounting or entry residency.
        cache: PlanCache[int] = PlanCache(capacity=2)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.reclassify_miss_as_hit()
        cache.get("b")  # miss
        cache.put("b", 2)
        cache.get("c")  # miss
        cache.put("c", 3)  # evicts "a"
        cache.reclassify_miss_as_hit()
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 3
        # Totals stay conserved: every lookup is exactly one of hit/miss.
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups

    def test_probe_counts_hits_but_never_misses(self):
        cache: PlanCache[int] = PlanCache(capacity=2)
        assert cache.probe("a") is None
        assert cache.stats.misses == 0
        cache.put("a", 1)
        assert cache.probe("a") == 1
        assert cache.stats.hits == 1
        # probe refreshes recency like get: "a" survives, "b" is evicted.
        cache.put("b", 2)
        cache.probe("a")
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache


class TestReclassifyClamp:
    """Regression: reclassify after the miss count was reset must clamp.

    The pre-tiering code decremented ``misses`` unconditionally, so a
    ``clear()`` (or any counter reset) racing between a caller's miss and
    its ``reclassify_miss_as_hit`` left ``misses`` at -1 forever — a torn
    read that the capacity=1 audit of snapshot()/reclassify found.  All
    three tiers clamp now.
    """

    def test_reclassify_after_clear_is_clamped(self):
        cache: PlanCache[int] = PlanCache(capacity=1)
        assert cache.get("a") is None  # a real miss …
        cache.clear()  # … wiped before the caller reports back
        cache.reclassify_miss_as_hit()
        stats = cache.snapshot()
        assert stats.misses == 0  # clamped, not -1
        assert stats.hits == 1
        assert stats.lookups == stats.hits + stats.misses

    def test_reclassify_without_any_miss_is_clamped(self):
        cache: PlanCache[int] = PlanCache(capacity=1)
        cache.reclassify_miss_as_hit()
        cache.reclassify_miss_as_hit()
        stats = cache.snapshot()
        assert (stats.hits, stats.misses) == (2, 0)

    def test_capacity_one_snapshot_audit_under_clear_races(self):
        """Capacity=1, with clear() and evict() thrown into the mix: no
        snapshot may ever observe negative or torn counters."""
        cache: PlanCache[int] = PlanCache(capacity=1)
        n_threads = 6
        violations: list[str] = []
        barrier = threading.Barrier(n_threads + 1)
        stop = threading.Event()

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait(timeout=30)
            for step in range(300):
                action = rng.random()
                key = f"k{rng.randint(0, 3)}"
                if action < 0.40:
                    if cache.get(key) is None:
                        cache.put(key, step)
                        cache.reclassify_miss_as_hit()
                elif action < 0.55:
                    cache.evict(key)
                elif action < 0.60:
                    cache.clear()
                else:
                    cache.put(key, step)

        def observer() -> None:
            barrier.wait(timeout=30)
            while not stop.is_set():
                stats, size = cache.snapshot_with_size()
                if size > 1:
                    violations.append(f"size {size} > capacity 1")
                if min(stats.hits, stats.misses, stats.evictions) < 0:
                    violations.append(f"negative counters: {stats}")
                if stats.lookups != stats.hits + stats.misses:
                    violations.append(f"torn counters: {stats}")

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        watcher = threading.Thread(target=observer)
        for thread in threads:
            thread.start()
        watcher.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        stop.set()
        watcher.join(timeout=30)
        assert not watcher.is_alive()
        assert violations == []


class TestConcurrentHammer:
    @pytest.mark.parametrize("capacity", [1, 4])
    def test_size_never_exceeds_capacity_under_hammering(self, capacity):
        """Concurrent put/get/reclassify from many threads: every snapshot
        must observe size <= capacity and non-negative, conserved counters."""
        cache: PlanCache[int] = PlanCache(capacity=capacity)
        n_threads = 8
        n_operations = 400
        violations: list[str] = []
        barrier = threading.Barrier(n_threads + 1)
        stop = threading.Event()

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait(timeout=30)
            for step in range(n_operations):
                key = f"k{rng.randint(0, 12)}"
                action = rng.random()
                if action < 0.45:
                    if cache.get(key) is None:
                        cache.put(key, step)
                elif action < 0.65:
                    cache.probe(key)
                elif action < 0.75:
                    # Pair a reclassify with a miss we just caused ourselves,
                    # as the service layer does.
                    if cache.get(f"fresh-{seed}-{step}") is None:
                        cache.put(f"fresh-{seed}-{step}", step)
                        cache.reclassify_miss_as_hit()
                else:
                    cache.put(key, step)

        def observer() -> None:
            barrier.wait(timeout=30)
            while not stop.is_set():
                stats, size = cache.snapshot_with_size()
                if size > capacity:
                    violations.append(f"size {size} > capacity {capacity}")
                if stats.hits < 0 or stats.misses < 0 or stats.evictions < 0:
                    violations.append(f"negative counters: {stats}")
                if stats.lookups != stats.hits + stats.misses:
                    violations.append(f"torn counters: {stats}")

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        watcher = threading.Thread(target=observer)
        for thread in threads:
            thread.start()
        watcher.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        stop.set()
        watcher.join(timeout=30)
        assert not watcher.is_alive()
        assert violations == []
        stats, size = cache.snapshot_with_size()
        assert size <= capacity
        assert len(cache) == size
