"""Worker DP (paper Algorithm 2/5): stats, split generation, partitions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import OptimizerSettings, PlanSpace
from repro.core.constraints import max_constraints, partition_constraints
from repro.core.counting import (
    admissible_result_count_at_least_2,
    linear_split_count,
)
from repro.core.partitioning import admissible_join_results, is_admissible
from repro.core.worker import (
    _bushy_groups,
    bushy_operands,
    naive_bushy_operands,
    optimize_partition,
)
from repro.plans.plan import iter_join_result_masks
from repro.query.generator import SteinbrunnGenerator
from repro.util.bitset import popcount


@pytest.fixture
def query8():
    return SteinbrunnGenerator(21).query(8)


@pytest.fixture
def query6():
    return SteinbrunnGenerator(22).query(6)


class TestWorkerStats:
    def test_admissible_count_matches_theory(self, query8, linear_settings):
        result = optimize_partition(query8, 3, 8, linear_settings)
        expected = admissible_result_count_at_least_2(8, 3, PlanSpace.LINEAR)
        assert result.stats.admissible_results == expected

    def test_split_count_matches_theory(self, query8, linear_settings):
        for partition_id in (0, 5):
            result = optimize_partition(query8, partition_id, 8, linear_settings)
            assert result.stats.splits_considered == linear_split_count(8, 3)

    def test_serial_table_entries(self, query6, linear_settings):
        result = optimize_partition(query6, 0, 1, linear_settings)
        # Every nonempty subset stores a plan when unconstrained.
        assert result.stats.table_entries == (1 << 6) - 1

    def test_plans_considered_at_least_splits(self, query6, linear_settings):
        result = optimize_partition(query6, 0, 1, linear_settings)
        assert result.stats.plans_considered >= result.stats.splits_considered

    def test_result_plans_single_objective(self, query6, linear_settings):
        result = optimize_partition(query6, 0, 2, linear_settings)
        assert result.stats.result_plans == len(result.plans) == 1

    def test_wall_time_recorded(self, query6, linear_settings):
        result = optimize_partition(query6, 0, 1, linear_settings)
        assert result.stats.wall_time_s > 0

    def test_partition_metadata(self, query6, linear_settings):
        result = optimize_partition(query6, 2, 4, linear_settings)
        assert result.stats.partition_id == 2
        assert result.stats.n_partitions == 4
        assert result.stats.n_constraints == 2


class TestPartitionPlansRespectConstraints:
    def test_linear_plan_join_results_admissible(self, query8, linear_settings):
        for partition_id in range(4):
            result = optimize_partition(query8, partition_id, 4, linear_settings)
            constraints = partition_constraints(8, partition_id, 4, PlanSpace.LINEAR)
            (plan,) = result.plans
            for mask in iter_join_result_masks(plan):
                assert is_admissible(mask, constraints)

    def test_bushy_plan_join_results_admissible(self, query6, bushy_settings):
        for partition_id in range(4):
            result = optimize_partition(query6, partition_id, 4, bushy_settings)
            constraints = partition_constraints(6, partition_id, 4, PlanSpace.BUSHY)
            (plan,) = result.plans
            for mask in iter_join_result_masks(plan):
                assert is_admissible(mask, constraints)

    def test_linear_partition_returns_left_deep(self, query8, linear_settings):
        result = optimize_partition(query8, 1, 4, linear_settings)
        assert result.plans[0].is_left_deep()

    def test_linear_join_order_respects_precedence(self, query8, linear_settings):
        for partition_id in range(8):
            result = optimize_partition(query8, partition_id, 8, linear_settings)
            order = result.plans[0].join_order()
            constraints = partition_constraints(8, partition_id, 8, PlanSpace.LINEAR)
            for constraint in constraints:
                assert order.index(constraint.before) < order.index(constraint.after)


class TestBushyOperands:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        data=st.data(),
    )
    def test_matches_naive_enumeration(self, n, data):
        limit = max_constraints(n, PlanSpace.BUSHY)
        l = data.draw(st.integers(min_value=0, max_value=limit))
        partition_id = data.draw(st.integers(min_value=0, max_value=(1 << l) - 1))
        constraints = partition_constraints(n, partition_id, 1 << l, PlanSpace.BUSHY)
        groups = _bushy_groups(n, constraints)
        admissible = admissible_join_results(n, constraints, PlanSpace.BUSHY)
        masks = [m for m in admissible if popcount(m) >= 2]
        sample = data.draw(st.lists(st.sampled_from(masks), min_size=1, max_size=5))
        for mask in sample:
            fast = sorted(bushy_operands(mask, groups))
            naive = sorted(naive_bushy_operands(mask, constraints))
            assert fast == naive

    def test_operand_complements_admissible(self):
        n = 6
        constraints = partition_constraints(n, 1, 4, PlanSpace.BUSHY)
        groups = _bushy_groups(n, constraints)
        full = (1 << n) - 1
        for left in bushy_operands(full, groups):
            assert is_admissible(left, constraints) or popcount(left) == 1
            right = full ^ left
            assert is_admissible(right, constraints) or popcount(right) == 1

    def test_degenerate_operands_present(self):
        groups = _bushy_groups(6, ())
        operands = bushy_operands(0b111111, groups)
        assert 0 in operands
        assert 0b111111 in operands
        assert len(operands) == 64


class TestEquivalenceAcrossSplitStrategies:
    def test_bushy_same_optimum_with_any_partition(self, query6, bushy_settings):
        serial = optimize_partition(query6, 0, 1, bushy_settings)
        best_serial = min(p.cost[0] for p in serial.plans)
        per_partition_best = []
        for partition_id in range(4):
            result = optimize_partition(query6, partition_id, 4, bushy_settings)
            per_partition_best.append(min(p.cost[0] for p in result.plans))
        assert min(per_partition_best) == pytest.approx(best_serial)
