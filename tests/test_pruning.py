"""Pruning policies: the single point of variation between optimizer flavours."""

from __future__ import annotations

import pytest

from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.cost.pruning import (
    InterestingOrderPruning,
    MinCostPruning,
    ParetoPruning,
    final_prune,
    make_pruning,
)
from repro.plans.orders import SortOrder
from repro.plans.plan import ScanPlan


def plan(cost, order=None, mask=0b1):
    """A standalone plan carrying the given cost vector."""
    return ScanPlan(mask=mask, rows=1.0, cost=tuple(cost), order=order, table=0)


def offer(policy, table, cost, order=None, mask=0b11):
    return policy.consider(table, mask, tuple(cost), order, lambda: plan(cost, order, mask))


class TestMinCost:
    def test_first_always_kept(self):
        table = {}
        assert offer(MinCostPruning(), table, [5.0])
        assert len(table[0b11]) == 1

    def test_cheaper_replaces(self):
        policy, table = MinCostPruning(), {}
        offer(policy, table, [5.0])
        assert offer(policy, table, [3.0])
        assert table[0b11][0].cost == (3.0,)

    def test_equal_not_kept(self):
        policy, table = MinCostPruning(), {}
        offer(policy, table, [5.0])
        assert not offer(policy, table, [5.0])

    def test_more_expensive_rejected(self):
        policy, table = MinCostPruning(), {}
        offer(policy, table, [5.0])
        assert not offer(policy, table, [7.0])
        assert table[0b11][0].cost == (5.0,)

    def test_entries_independent_per_mask(self):
        policy, table = MinCostPruning(), {}
        offer(policy, table, [5.0], mask=0b011)
        offer(policy, table, [1.0], mask=0b110)
        assert table[0b011][0].cost == (5.0,)
        assert table[0b110][0].cost == (1.0,)

    def test_final_prune_picks_min(self):
        policy = MinCostPruning()
        best = policy.final_prune([plan([4.0]), plan([2.0]), plan([9.0])])
        assert [p.cost for p in best] == [(2.0,)]

    def test_final_prune_empty(self):
        assert MinCostPruning().final_prune([]) == []


class TestInterestingOrders:
    ORDER = SortOrder(0, "c0")

    def test_keeps_costlier_sorted_plan(self):
        policy, table = InterestingOrderPruning(), {}
        offer(policy, table, [5.0], order=None)
        assert offer(policy, table, [7.0], order=self.ORDER)
        assert len(table[0b11]) == 2

    def test_cheap_sorted_plan_evicts_unsorted(self):
        policy, table = InterestingOrderPruning(), {}
        offer(policy, table, [5.0], order=None)
        assert offer(policy, table, [3.0], order=self.ORDER)
        assert len(table[0b11]) == 1
        assert table[0b11][0].order == self.ORDER

    def test_unsorted_cannot_evict_sorted(self):
        policy, table = InterestingOrderPruning(), {}
        offer(policy, table, [5.0], order=self.ORDER)
        assert offer(policy, table, [3.0], order=None)
        assert len(table[0b11]) == 2

    def test_costlier_unsorted_rejected(self):
        policy, table = InterestingOrderPruning(), {}
        offer(policy, table, [5.0], order=None)
        assert not offer(policy, table, [9.0], order=None)

    def test_same_order_cheaper_replaces(self):
        policy, table = InterestingOrderPruning(), {}
        offer(policy, table, [5.0], order=self.ORDER)
        assert offer(policy, table, [3.0], order=self.ORDER)
        assert len(table[0b11]) == 1

    def test_final_prune_ignores_order(self):
        policy = InterestingOrderPruning()
        best = policy.final_prune([plan([4.0], self.ORDER), plan([2.0])])
        assert [p.cost for p in best] == [(2.0,)]


class TestParetoExact:
    def test_incomparable_coexist(self):
        policy, table = ParetoPruning(1.0), {}
        offer(policy, table, [1.0, 9.0])
        assert offer(policy, table, [9.0, 1.0])
        assert len(table[0b11]) == 2

    def test_dominated_candidate_rejected(self):
        policy, table = ParetoPruning(1.0), {}
        offer(policy, table, [1.0, 1.0])
        assert not offer(policy, table, [2.0, 2.0])

    def test_dominating_candidate_evicts(self):
        policy, table = ParetoPruning(1.0), {}
        offer(policy, table, [2.0, 2.0])
        offer(policy, table, [3.0, 1.0])
        assert offer(policy, table, [1.0, 1.0])
        costs = {p.cost for p in table[0b11]}
        assert costs == {(1.0, 1.0)}

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            ParetoPruning(0.9)


class TestParetoApproximate:
    def test_near_duplicate_pruned(self):
        policy, table = ParetoPruning(2.0), {}
        offer(policy, table, [1.0, 1.0])
        assert not offer(policy, table, [1.5, 1.5])

    def test_far_point_kept(self):
        policy, table = ParetoPruning(2.0), {}
        offer(policy, table, [1.0, 10.0])
        assert offer(policy, table, [10.0, 1.0])

    def test_eviction_only_on_exact_dominance(self):
        policy, table = ParetoPruning(2.0), {}
        offer(policy, table, [4.0, 1.0])
        # (3, 2) is alpha-dominated by (4, 1): 4 <= 2*3 and 1 <= 2*2.
        assert not offer(policy, table, [3.0, 2.0])
        # (1.5, 3) escapes alpha-dominance (4 > 2*1.5) and is kept; it does
        # not exactly dominate (4, 1), so both plans stay.
        assert offer(policy, table, [1.5, 3.0])
        assert len(table[0b11]) == 2

    def test_respect_orders(self):
        policy, table = ParetoPruning(1.0, respect_orders=True), {}
        order = SortOrder(0, "c0")
        offer(policy, table, [1.0, 1.0], order=None)
        # Same cost but sorted: must be kept because unsorted cannot cover it.
        assert offer(policy, table, [1.0, 1.0], order=order)


class TestFinalPrune:
    def test_merges_partitions(self):
        policy = ParetoPruning(1.0)
        merged = final_prune(
            policy,
            [
                [plan([1.0, 9.0]), plan([5.0, 5.0])],
                [plan([9.0, 1.0]), plan([6.0, 6.0])],
            ],
        )
        costs = {p.cost for p in merged}
        assert costs == {(1.0, 9.0), (5.0, 5.0), (9.0, 1.0)}


class TestMakePruning:
    def test_default_is_min_cost(self):
        assert isinstance(make_pruning(OptimizerSettings()), MinCostPruning)

    def test_orders(self):
        settings = OptimizerSettings(consider_orders=True)
        assert isinstance(make_pruning(settings), InterestingOrderPruning)

    def test_multi_objective(self):
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=3.0)
        policy = make_pruning(settings)
        assert isinstance(policy, ParetoPruning)
        assert policy.alpha == 3.0

    def test_multi_objective_with_orders(self):
        settings = OptimizerSettings(
            objectives=MULTI_OBJECTIVE, alpha=1.0, consider_orders=True
        )
        assert isinstance(make_pruning(settings), ParetoPruning)
