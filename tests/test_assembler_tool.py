"""The EXPERIMENTS.md assembler tool, end to end on sample logs."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "assemble_experiments.py"

SAMPLE_LOG = """\
== Figure 2: MPQ scaling (single objective, larger search spaces)
scale=ci; medians over 2 queries
-- MPQ linear 10
 workers      time_ms    w_time_ms   memory_rel      network_B
       1        15.92        13.80         1023           1608
       2        13.03        10.86          768           3216
       4        10.00         7.60          577           6432
[fig2 completed in 20.0s wall-clock]
"""


def run_tool(tmp_path, *logs):
    arguments = [sys.executable, str(TOOL)]
    for index, text in enumerate(logs):
        path = tmp_path / f"log{index}.txt"
        path.write_text(text)
        arguments.append(str(path))
    output = tmp_path / "EXPERIMENTS.md"
    arguments += ["-o", str(output)]
    completed = subprocess.run(
        arguments, capture_output=True, text=True, cwd=tmp_path
    )
    return completed, output


class TestAssemblerTool:
    def test_writes_output(self, tmp_path):
        completed, output = run_tool(tmp_path, SAMPLE_LOG)
        assert completed.returncode == 0, completed.stderr
        assert output.exists()
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 2" in text
        assert "MPQ linear 10" in text

    def test_computes_doubling_factors(self, tmp_path):
        __, output = run_tool(tmp_path, SAMPLE_LOG)
        text = output.read_text()
        assert "per worker doubling" in text
        # memory 1023 -> 768 is x0.751
        assert "x0.75" in text

    def test_warns_on_missing_blocks(self, tmp_path):
        completed, __ = run_tool(tmp_path, SAMPLE_LOG)
        assert "missing experiment blocks" in completed.stderr

    def test_renders_chart(self, tmp_path):
        __, output = run_tool(tmp_path, SAMPLE_LOG)
        text = output.read_text()
        assert "vs workers (log-log)" in text
