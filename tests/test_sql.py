"""SQL frontend: parsing, catalog binding, error reporting."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.query.io import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.query.schema import Catalog, Column, Table
from repro.query.sql import SqlError, parse_sql


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add(
        Table(
            "lineitem",
            60_000,
            (Column("okey", 15_000), Column("pkey", 2_000)),
        )
    )
    catalog.add(Table("orders", 15_000, (Column("okey", 15_000), Column("ckey", 1_000))))
    catalog.add(Table("customer", 1_000, (Column("ckey", 1_000),)))
    catalog.add(Table("part", 2_000, (Column("pkey", 2_000),)))
    return catalog


SQL = (
    "SELECT * FROM lineitem l, orders o, customer c "
    "WHERE l.okey = o.okey AND o.ckey = c.ckey"
)


class TestParsing:
    def test_tables_in_from_order(self, catalog):
        query = parse_sql(SQL, catalog)
        assert [t.name for t in query.tables] == ["lineitem", "orders", "customer"]

    def test_predicates_bound(self, catalog):
        query = parse_sql(SQL, catalog)
        assert len(query.predicates) == 2
        first = query.predicates[0]
        assert (first.left_table, first.left_column) == (0, "okey")
        assert (first.right_table, first.right_column) == (1, "okey")

    def test_selectivity_from_domains(self, catalog):
        query = parse_sql(SQL, catalog)
        assert query.predicates[0].selectivity == pytest.approx(1 / 15_000)

    def test_no_where_clause(self, catalog):
        query = parse_sql("SELECT * FROM orders, customer", catalog)
        assert query.n_tables == 2
        assert query.predicates == ()

    def test_alias_defaults_to_table_name(self, catalog):
        query = parse_sql(
            "SELECT * FROM orders, customer WHERE orders.ckey = customer.ckey",
            catalog,
        )
        assert len(query.predicates) == 1

    def test_keywords_case_insensitive(self, catalog):
        query = parse_sql(
            "select * from orders o, customer c where o.ckey = c.ckey", catalog
        )
        assert query.n_tables == 2

    def test_four_way_join_optimizes(self, catalog):
        sql = (
            "SELECT * FROM lineitem l, orders o, customer c, part p "
            "WHERE l.okey = o.okey AND o.ckey = c.ckey AND l.pkey = p.pkey"
        )
        query = parse_sql(sql, catalog)
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        assert plan.mask == query.all_tables_mask


class TestErrors:
    def test_unknown_table(self, catalog):
        with pytest.raises(SqlError, match="unknown table"):
            parse_sql("SELECT * FROM nope", catalog)

    def test_unknown_alias(self, catalog):
        with pytest.raises(SqlError, match="alias"):
            parse_sql(
                "SELECT * FROM orders o WHERE x.ckey = o.ckey", catalog
            )

    def test_unknown_column(self, catalog):
        with pytest.raises(SqlError, match="column"):
            parse_sql(
                "SELECT * FROM orders o, customer c WHERE o.nope = c.ckey",
                catalog,
            )

    def test_self_predicate(self, catalog):
        with pytest.raises(SqlError, match="two tables"):
            parse_sql(
                "SELECT * FROM orders o, customer c WHERE o.okey = o.ckey",
                catalog,
            )

    def test_duplicate_alias(self, catalog):
        with pytest.raises(SqlError, match="duplicate"):
            parse_sql("SELECT * FROM orders o, customer o", catalog)

    def test_select_list_must_be_star(self, catalog):
        with pytest.raises(SqlError):
            parse_sql("SELECT okey FROM orders", catalog)

    def test_unsupported_clause(self, catalog):
        with pytest.raises(SqlError, match="expected WHERE"):
            parse_sql("SELECT * FROM orders o GROUP BY x", catalog)

    def test_bare_keyword_is_an_alias(self, catalog):
        """Identifiers after a table name bind as aliases (SQL-style)."""
        query = parse_sql("SELECT * FROM orders GROUP", catalog)
        assert query.n_tables == 1

    def test_bad_character(self, catalog):
        with pytest.raises(SqlError, match="unexpected character"):
            parse_sql("SELECT * FROM orders; DROP TABLE", catalog)

    def test_truncated(self, catalog):
        with pytest.raises(SqlError, match="end of query"):
            parse_sql("SELECT * FROM orders o WHERE o.ckey =", catalog)


class TestCatalogIO:
    def test_roundtrip(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert set(loaded.tables) == set(catalog.tables)
        assert loaded.get("orders").columns == catalog.get("orders").columns

    def test_dict_roundtrip(self, catalog):
        clone = catalog_from_dict(catalog_to_dict(catalog))
        assert clone.get("lineitem").cardinality == 60_000

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            catalog_from_dict({"tables": [{"name": "X"}]})


class TestSqlThroughCLI:
    def test_optimize_sql(self, catalog, tmp_path, capsys):
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        code = main(
            [
                "optimize",
                "--sql", SQL,
                "--catalog", str(path),
                "--workers", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "best cost" in out

    def test_sql_without_catalog_rejected(self):
        with pytest.raises(SystemExit, match="catalog"):
            main(["optimize", "--sql", "SELECT * FROM x"])

    def test_no_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["optimize"])
