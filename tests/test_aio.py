"""The asyncio front-end: batching, backpressure, cancellation, soak replay."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_async,
    unique_fingerprints,
)
from repro.cli import main
from repro.cluster.executors import SerialPartitionExecutor
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.service import (
    AsyncOptimizerGateway,
    GatewayOverloadedError,
    ShardedOptimizerGateway,
)
from tests.test_service import permute_query, shuffled

WAIT_S = 30.0


def run(coroutine):
    return asyncio.run(coroutine)


class GatedSerialExecutor:
    """Blocks every DP run until ``gate`` is set; counts runs."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()
        self._inner = SerialPartitionExecutor()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=WAIT_S), "test gate never opened"
        return self._inner.map_partitions(query, n_partitions, settings)


class FailingExecutor:
    """Every DP run fails — for error propagation through the front-end."""

    def map_partitions(self, query, n_partitions, settings):
        raise ConnectionError("worker fleet unreachable")


def gated_gateway(gate, n_shards=2, n_workers=2):
    executors: list[GatedSerialExecutor] = []

    def factory():
        executor = GatedSerialExecutor(gate)
        executors.append(executor)
        return executor

    gateway = ShardedOptimizerGateway(
        n_shards=n_shards, n_workers=n_workers, executor_factory=factory
    )
    return gateway, executors


async def poll(predicate, timeout=WAIT_S):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.002)
    return predicate()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(batch_window_ms=-1)
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(max_batch=0)
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(max_pending=0)
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(tenant_share=0.0)
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(tenant_share=1.5)

    def test_requests_rejected_after_close(self):
        async def scenario():
            front = AsyncOptimizerGateway(n_shards=2, n_workers=2)
            await front.close()
            with pytest.raises(RuntimeError, match="closed"):
                await front.optimize(SteinbrunnGenerator(50).query(4))

        run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            front = AsyncOptimizerGateway(n_shards=2, n_workers=2)
            await front.close()
            await front.close()

        run(scenario())


class TestCorrectness:
    def test_single_requests_match_serial_then_hit(self):
        async def scenario():
            generator = SteinbrunnGenerator(51)
            queries = [generator.query(6) for __ in range(4)]
            async with AsyncOptimizerGateway(n_shards=3, n_workers=4) as front:
                for query in queries:
                    result = await front.optimize(query)
                    assert not result.cached
                    reference = best_plan(optimize_serial(query))
                    assert result.best.cost == reference.cost
                for query in queries:
                    again = await front.optimize(query)
                    assert again.cached
                stats = front.stats()
                assert stats.fast_path_hits == 4
                assert stats.gateway.optimizations == 4
                assert stats.queue_depth == 0
                assert stats.outstanding == 0

        run(scenario())

    def test_isomorphic_coalesced_waiters_each_get_their_numbering(self):
        # Waiters for permuted copies of one query attach to the same queued
        # entry; each must be answered in its *own* table numbering.
        async def scenario():
            base = SteinbrunnGenerator(52).query(7)
            variants = [base] + [
                permute_query(base, shuffled(7, seed=seed)) for seed in range(5)
            ]
            gate = threading.Event()
            gateway, executors = gated_gateway(gate, n_shards=2, n_workers=4)
            async with AsyncOptimizerGateway(gateway, own_gateway=True) as front:
                tasks = [
                    asyncio.ensure_future(front.optimize(variant))
                    for variant in variants
                ]
                assert await poll(
                    lambda: sum(executor.calls for executor in executors) == 1
                )
                gate.set()
                results = await asyncio.gather(*tasks)
                stats = front.stats()
            assert stats.gateway.optimizations == 1
            assert sum(executor.calls for executor in executors) == 1
            reference = best_plan(optimize_serial(base)).cost[0]
            for variant, result in zip(variants, results):
                assert result.best.mask == variant.all_tables_mask
                assert result.best.cost[0] == pytest.approx(reference, rel=1e-9)
            # Exactly one fresh answer; the coalesced rest are cache-flagged.
            assert sum(not result.cached for result in results) == 1

        run(scenario())

    def test_batches_group_by_settings_and_workers(self):
        # Incompatible requests (different settings/workers) never share a
        # micro-batch, even when queued together.
        async def scenario():
            generator = SteinbrunnGenerator(53)
            query = generator.query(6)
            other = generator.query(6)
            gate = threading.Event()
            gateway, executors = gated_gateway(gate, n_shards=1, n_workers=2)
            async with AsyncOptimizerGateway(gateway, own_gateway=True) as front:
                first = asyncio.ensure_future(front.optimize(query, n_workers=2))
                assert await poll(
                    lambda: sum(executor.calls for executor in executors) >= 1
                )
                # Queued behind the gated dispatch: same query at different
                # parallelism, plus a different query at each parallelism.
                tasks = [
                    asyncio.ensure_future(front.optimize(query, n_workers=4)),
                    asyncio.ensure_future(front.optimize(other, n_workers=2)),
                    asyncio.ensure_future(front.optimize(other, n_workers=4)),
                ]
                await asyncio.sleep(0)
                gate.set()
                await asyncio.gather(first, *tasks)
                stats = front.stats()
            # Two worker settings -> at least two separate dispatches beyond
            # the leader's, and no batch mixed the two parallelism levels.
            assert stats.dispatched_batches >= 3
            assert max(stats.batch_sizes) <= 2

        run(scenario())

    def test_dp_errors_propagate_to_all_waiters(self):
        async def scenario():
            query = SteinbrunnGenerator(54).query(5)
            gateway = ShardedOptimizerGateway(
                n_shards=2, n_workers=2, executor_factory=FailingExecutor
            )
            async with AsyncOptimizerGateway(gateway, own_gateway=True) as front:
                tasks = [
                    asyncio.ensure_future(front.optimize(query)) for __ in range(3)
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                assert all(
                    isinstance(outcome, ConnectionError) for outcome in outcomes
                )
                stats = front.stats()
                assert stats.outstanding == 0
                assert stats.gateway.in_flight == 0
                # A retry after the failure leads afresh (and fails afresh).
                with pytest.raises(ConnectionError):
                    await front.optimize(query)

        run(scenario())


class TestResultMemo:
    def test_repeated_query_served_from_edge_memo(self):
        async def scenario():
            query = SteinbrunnGenerator(62).query(6)
            async with AsyncOptimizerGateway(n_shards=2, n_workers=2) as front:
                fresh = await front.optimize(query)
                first_hit = await front.optimize(query)
                second_hit = await front.optimize(query)
                stats = front.stats()
                assert first_hit.cached and second_hit.cached
                assert first_hit.best.cost == fresh.best.cost
                assert second_hit.plans == fresh.plans
                # The second hit (and beyond) never re-relabels: it is served
                # from the memo populated when the miss settled.
                assert stats.result_memo_hits >= 1
                assert stats.fast_path_hits == 2
                # Served answers are fresh envelopes: mutating any caller's
                # plan list — including the original miss's result, which is
                # what the memo was populated from — cannot corrupt later
                # answers.
                reference = list(fresh.plans)
                fresh.plans.clear()
                first_hit.plans.clear()
                third_hit = await front.optimize(query)
                assert third_hit.plans == reference

        run(scenario())

    def test_permuted_request_bypasses_memo_but_serves_correctly(self):
        async def scenario():
            query = SteinbrunnGenerator(63).query(6)
            permuted = permute_query(query, shuffled(6, seed=2))
            async with AsyncOptimizerGateway(n_shards=2, n_workers=2) as front:
                await front.optimize(query)
                served = await front.optimize(permuted)
                assert served.cached
                assert served.best.mask == permuted.all_tables_mask
                stats = front.stats()
                # Different numbering: the memo entry does not apply.
                assert stats.result_memo_hits == 0

        run(scenario())

    def test_memo_can_be_disabled(self):
        async def scenario():
            query = SteinbrunnGenerator(64).query(5)
            async with AsyncOptimizerGateway(
                n_shards=1, n_workers=2, result_memo_size=0
            ) as front:
                await front.optimize(query)
                hit = await front.optimize(query)
                assert hit.cached
                assert front.stats().result_memo_hits == 0

        run(scenario())

    def test_memo_is_lru_bounded(self):
        async def scenario():
            generator = SteinbrunnGenerator(65)
            queries = [generator.query(4) for __ in range(4)]
            async with AsyncOptimizerGateway(
                n_shards=1, n_workers=2, result_memo_size=2
            ) as front:
                for query in queries:
                    await front.optimize(query)
                assert len(front._served) <= 2

        run(scenario())

    def test_rejects_negative_memo_size(self):
        with pytest.raises(ValueError):
            AsyncOptimizerGateway(result_memo_size=-1)


class TestBackpressure:
    def test_queue_full_rejection_carries_retry_after(self):
        async def scenario():
            generator = SteinbrunnGenerator(55)
            gate = threading.Event()
            gateway, __ = gated_gateway(gate)
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, max_pending=2, tenant_share=1.0
            ) as front:
                tasks = [
                    asyncio.ensure_future(front.optimize(generator.query(5)))
                    for __ in range(2)
                ]
                await asyncio.sleep(0.02)
                with pytest.raises(GatewayOverloadedError) as rejection:
                    await front.optimize(generator.query(5))
                assert rejection.value.reason == "queue-full"
                assert rejection.value.retry_after_s > 0
                gate.set()
                await asyncio.gather(*tasks)
                stats = front.stats()
                assert stats.rejected_queue_full == 1
                assert stats.rejections == 1
                # After the queue drained, admission works again.
                assert (await front.optimize(generator.query(5))) is not None

        run(scenario())

    def test_hot_tenant_cannot_starve_others(self):
        async def scenario():
            generator = SteinbrunnGenerator(56)
            gate = threading.Event()
            gateway, __ = gated_gateway(gate)
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, max_pending=4, tenant_share=0.5
            ) as front:
                # The hot tenant fills its share (2 of 4 slots) ...
                hot = [
                    asyncio.ensure_future(
                        front.optimize(generator.query(5), tenant="hot")
                    )
                    for __ in range(2)
                ]
                await asyncio.sleep(0.02)
                # ... and its next request is rejected for fairness ...
                with pytest.raises(GatewayOverloadedError) as rejection:
                    await front.optimize(generator.query(5), tenant="hot")
                assert rejection.value.reason == "tenant-share"
                assert rejection.value.tenant == "hot"
                # ... while another tenant is still admitted.
                cold = asyncio.ensure_future(
                    front.optimize(generator.query(5), tenant="cold")
                )
                await asyncio.sleep(0.02)
                gate.set()
                await asyncio.gather(*hot, cold)
                stats = front.stats()
                assert stats.rejected_tenant_share == 1
                assert stats.tenants["hot"].rejected == 1
                assert stats.tenants["cold"].rejected == 0
                assert stats.tenants["cold"].completed == 1

        run(scenario())

    def test_fast_path_hits_bypass_admission_control(self):
        # A full queue must not reject requests the cache can answer.
        async def scenario():
            generator = SteinbrunnGenerator(57)
            cached_query = generator.query(5)
            gate = threading.Event()
            gateway, __ = gated_gateway(gate)
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, max_pending=1, tenant_share=1.0
            ) as front:
                gate.set()
                await front.optimize(cached_query)  # warm the cache
                gate.clear()
                blocked = asyncio.ensure_future(
                    front.optimize(generator.query(5))
                )
                await asyncio.sleep(0.02)  # queue now full
                hit = await front.optimize(cached_query)
                assert hit.cached
                gate.set()
                await blocked

        run(scenario())


class TestCancellation:
    def test_cancelled_queued_entry_never_runs(self):
        # All waiters of a queued entry cancel before dispatch: the DP for
        # that fingerprint must never run.
        async def scenario():
            generator = SteinbrunnGenerator(58)
            blocker, doomed = generator.query(5), generator.query(5)
            gate = threading.Event()
            gateway, executors = gated_gateway(gate, n_shards=1)
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, batch_window_ms=50.0
            ) as front:
                leader = asyncio.ensure_future(front.optimize(blocker))
                assert await poll(
                    lambda: sum(executor.calls for executor in executors) == 1
                )
                victim = asyncio.ensure_future(front.optimize(doomed))
                await asyncio.sleep(0)  # let it enqueue behind the busy batch
                assert front.stats().queue_depth == 1
                victim.cancel()
                await asyncio.sleep(0)
                gate.set()
                await leader
                stats = front.stats()
                assert stats.cancelled == 1
                assert stats.outstanding == 0
            # Only the blocker's DP ran.
            assert sum(executor.calls for executor in executors) == 1

        run(scenario())

    def test_cancelling_one_coalesced_waiter_leaves_the_rest(self):
        async def scenario():
            query = SteinbrunnGenerator(59).query(6)
            gate = threading.Event()
            gateway, executors = gated_gateway(gate, n_shards=1)
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, batch_window_ms=50.0
            ) as front:
                blocker = asyncio.ensure_future(
                    front.optimize(SteinbrunnGenerator(60).query(5))
                )
                assert await poll(
                    lambda: sum(executor.calls for executor in executors) == 1
                )
                survivors = [
                    asyncio.ensure_future(front.optimize(query)) for __ in range(2)
                ]
                casualty = asyncio.ensure_future(front.optimize(query))
                await asyncio.sleep(0)
                assert front.stats().coalesced == 2
                casualty.cancel()
                await asyncio.sleep(0)
                gate.set()
                await blocker
                results = await asyncio.gather(*survivors)
                assert all(
                    result.best.cost == best_plan(optimize_serial(query)).cost
                    for result in results
                )
                stats = front.stats()
                assert stats.cancelled == 1
                assert stats.outstanding == 0
                assert stats.gateway.in_flight == 0

        run(scenario())

    def test_cancellation_after_dispatch_releases_gauges(self):
        # Cancelling a waiter whose batch is already running discards only
        # that waiter's answer; every gauge still returns to zero.
        async def scenario():
            query = SteinbrunnGenerator(61).query(5)
            gate = threading.Event()
            gateway, executors = gated_gateway(gate, n_shards=1)
            async with AsyncOptimizerGateway(gateway, own_gateway=True) as front:
                doomed = asyncio.ensure_future(front.optimize(query))
                assert await poll(
                    lambda: sum(executor.calls for executor in executors) == 1
                )
                doomed.cancel()
                await asyncio.sleep(0)
                gate.set()
                await poll(lambda: front.stats().in_flight_batches == 0)
                stats = front.stats()
                assert stats.cancelled == 1
                assert stats.outstanding == 0
                assert stats.gateway.in_flight == 0
                # The run still completed and filled the cache: a retry hits.
                result = await front.optimize(query)
                assert result.cached

        run(scenario())


class TestSoakReplay:
    def test_64_client_zipf_replay_runs_each_fingerprint_once(self):
        """Acceptance: a seeded 64-client Zipf replay preserves
        exactly-one-DP-run-per-unique-fingerprint, with plans matching
        serial and every gauge back to zero."""
        profile = TrafficProfile(
            n_requests=128, n_unique=10, tables=(4, 5), seed=13
        )
        schedule = generate_traffic(profile)
        expected = unique_fingerprints(schedule)

        class CountingExecutor(SerialPartitionExecutor):
            def __init__(self) -> None:
                self.calls = 0
                self._lock = threading.Lock()

            def map_partitions(self, query, n_partitions, settings):
                with self._lock:
                    self.calls += 1
                return super().map_partitions(query, n_partitions, settings)

        async def scenario():
            executors = []

            def factory():
                executor = CountingExecutor()
                executors.append(executor)
                return executor

            gateway = ShardedOptimizerGateway(
                n_shards=4, n_workers=4, executor_factory=factory
            )
            async with AsyncOptimizerGateway(
                gateway, own_gateway=True, max_pending=48
            ) as front:
                report = await replay_async(front, schedule, n_clients=64)
                stats = front.stats()
            return report, stats, sum(executor.calls for executor in executors)

        report, stats, executor_runs = run(scenario())
        assert stats.gateway.optimizations == len(expected)
        assert executor_runs == len(expected)
        assert stats.outstanding == 0
        assert stats.queue_depth == 0
        assert stats.gateway.in_flight == 0
        assert len(report.results) == len(schedule)
        # Every answer equals serial optimization under its own settings.
        references: dict[str, tuple] = {}
        for request, result in zip(schedule, report.results):
            key = f"{id(request.query)}-{request.feature}"
            if key not in references:
                references[key] = best_plan(
                    optimize_serial(request.query, request.settings)
                ).cost
            assert result.best.cost == references[key]
        # The replay covered all tenants and the retry path stayed sane.
        assert set(stats.tenants) == {"alpha", "beta", "gamma"}
        assert stats.requests >= len(schedule)

    @pytest.mark.slow
    def test_large_soak_with_tight_admission_and_small_cache(self):
        """Soak: heavy replay against a deliberately under-provisioned
        front-end (tiny queue, small cache) — rejections and evictions occur,
        yet every request is eventually answered correctly and no gauge
        leaks."""
        profile = TrafficProfile(
            n_requests=384, n_unique=24, tables=(4, 6), seed=29
        )
        schedule = generate_traffic(profile)

        async def scenario():
            async with AsyncOptimizerGateway(
                n_shards=4,
                n_workers=4,
                cache_capacity=8,  # smaller than the unique pool: evictions
                max_pending=16,
                tenant_share=0.5,
            ) as front:
                report = await replay_async(front, schedule, n_clients=64)
                stats = front.stats()
            return report, stats

        report, stats = run(scenario())
        assert len(report.results) == len(schedule)
        assert stats.outstanding == 0
        assert stats.queue_depth == 0
        assert stats.gateway.in_flight == 0
        assert stats.gateway.evictions > 0
        for request, result in zip(schedule, report.results):
            assert result.best.mask == request.query.all_tables_mask


class TestServeBatchCLIAsync:
    def test_async_serve_batch_json(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"q{index}.json"
            main(
                ["generate", "--tables", "5", "--seed", str(index), "-o", str(path)]
            )
            paths.append(str(path))
        capsys.readouterr()
        assert (
            main(
                [
                    "serve-batch",
                    *paths,
                    paths[0],
                    "--shards",
                    "2",
                    "--async",
                    "--repeat",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["async"] is True
        front = payload["async_front_end"]
        assert front["rejections"] == {"queue_full": 0, "tenant_share": 0}
        assert front["coalesced"] == 1  # in-batch duplicate of q0
        assert payload["gateway"]["optimizations"] == 3
        cached_flags = [
            result["cached"]
            for round_payload in payload["rounds"]
            for result in round_payload["results"]
        ]
        # Round 1: three fresh runs, the duplicate coalesced; round 2 all hit.
        assert cached_flags == [False, False, False, True, True, True, True, True]
        assert front["tenants"]["cli"]["completed"] == 8

    def test_cli_single_tenant_gets_the_full_pending_bound(self, tmp_path, capsys):
        # Regression: the CLI's lone "cli" tenant must get all of
        # --max-pending, not a tenant_share-halved allowance.
        paths = []
        for index in range(4):
            path = tmp_path / f"q{index}.json"
            main(
                ["generate", "--tables", "4", "--seed", str(index), "-o", str(path)]
            )
            paths.append(str(path))
        capsys.readouterr()
        assert (
            main(
                ["serve-batch", *paths, "--async", "--max-pending", "4", "--json"]
            )
            == 0
        )
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["async_front_end"]["rejections"] == {
            "queue_full": 0,
            "tenant_share": 0,
        }

    def test_async_flags_require_async(self, tmp_path):
        path = tmp_path / "q.json"
        main(["generate", "--tables", "4", "-o", str(path)])
        with pytest.raises(SystemExit):
            main(["serve-batch", str(path), "--max-pending", "5"])
