"""Retry executor, skew-freeness, and DOT export."""

from __future__ import annotations

import pytest

from repro.cluster.executors import (
    RetryingPartitionExecutor,
    SerialPartitionExecutor,
)
from repro.config import OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.core.worker import optimize_partition
from repro.plans.dot import plan_to_dot
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture
def query():
    return SteinbrunnGenerator(91).query(6)


class TestRetryingExecutor:
    def test_passthrough_when_inner_works(self, query, linear_settings):
        executor = RetryingPartitionExecutor(inner=SerialPartitionExecutor())
        results = executor.map_partitions(query, 4, linear_settings)
        assert len(results) == 4
        assert executor.retries == 0

    def test_recovers_from_inner_failure(self, query, linear_settings):
        class CrashingExecutor:
            def map_partitions(self, query, n_partitions, settings):
                raise ConnectionError("cluster gone")

        executor = RetryingPartitionExecutor(inner=CrashingExecutor())
        result = optimize_parallel(query, 4, linear_settings, executor=executor)
        serial = best_plan(optimize_serial(query, linear_settings))
        assert result.best.cost[0] == pytest.approx(serial.cost[0])
        assert executor.retries >= 1

    def test_wholesale_failure_counts_per_partition_resubmissions(
        self, query, linear_settings
    ):
        # Regression: a wholesale inner-executor failure re-runs all
        # ``n_partitions`` tasks but used to count as one retry.  The
        # counter's unit is task *resubmissions*, so it advances by the
        # partition count.
        class CrashingExecutor:
            def map_partitions(self, query, n_partitions, settings):
                raise ConnectionError("cluster gone")

        executor = RetryingPartitionExecutor(inner=CrashingExecutor())
        executor.map_partitions(query, 4, linear_settings)
        assert executor.retries == 4
        executor.map_partitions(query, 2, linear_settings)
        assert executor.retries == 6

    def test_per_partition_flake_counts_each_resubmission(
        self, query, linear_settings, monkeypatch
    ):
        # One partition task fails twice before succeeding: two
        # resubmissions of that task, zero for the other partitions.
        import repro.cluster.executors as executors_module

        real = executors_module.optimize_partition
        failures = {"remaining": 2}

        def flaky(query, partition_id, n_partitions, settings):
            if partition_id == 1 and failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("transient worker failure")
            return real(query, partition_id, n_partitions, settings)

        monkeypatch.setattr(executors_module, "optimize_partition", flaky)
        executor = RetryingPartitionExecutor(max_attempts=3)
        results = executor.map_partitions(query, 4, linear_settings)
        assert [r.stats.partition_id for r in results] == [0, 1, 2, 3]
        assert executor.retries == 2

    def test_exhausted_attempts_raise_the_real_error(
        self, query, linear_settings, monkeypatch
    ):
        import repro.cluster.executors as executors_module

        def always_failing(query, partition_id, n_partitions, settings):
            raise OSError("worker host is gone")

        monkeypatch.setattr(
            executors_module, "optimize_partition", always_failing
        )
        executor = RetryingPartitionExecutor(max_attempts=3)
        with pytest.raises(OSError, match="worker host is gone"):
            executor.map_partitions(query, 2, linear_settings)
        # Two resubmissions for the first partition (its final failure
        # propagates rather than being resubmitted).
        assert executor.retries == 2

    def test_no_inner_runs_inline(self, query, linear_settings):
        executor = RetryingPartitionExecutor()
        results = executor.map_partitions(query, 2, linear_settings)
        assert [r.stats.partition_id for r in results] == [0, 1]

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryingPartitionExecutor(max_attempts=0)


class TestSkewFreeness:
    """The paper: "All plan space partitions have the same size which
    guarantees skew-free parallelization." — verify at the worker level."""

    def test_linear_partitions_identical_work(self, query, linear_settings):
        stats = [
            optimize_partition(query, pid, 8, linear_settings).stats
            for pid in range(8)
        ]
        assert len({s.admissible_results for s in stats}) == 1
        assert len({s.splits_considered for s in stats}) == 1
        assert len({s.table_entries for s in stats}) == 1

    def test_bushy_partitions_identical_work(self, bushy_settings):
        query = SteinbrunnGenerator(92).query(6)
        stats = [
            optimize_partition(query, pid, 4, bushy_settings).stats
            for pid in range(4)
        ]
        assert len({s.admissible_results for s in stats}) == 1
        assert len({s.splits_considered for s in stats}) == 1

    def test_candidate_counts_near_uniform(self, query, linear_settings):
        """Costed candidates may differ slightly (operator applicability),
        but never by more than a small factor — no real skew."""
        considered = [
            optimize_partition(query, pid, 8, linear_settings).stats.plans_considered
            for pid in range(8)
        ]
        assert max(considered) <= 2 * min(considered)


class TestDotExport:
    def test_digraph_structure(self, query, linear_settings):
        plan = best_plan(optimize_serial(query, linear_settings))
        dot = plan_to_dot(plan, tuple(t.name for t in query.tables))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("Join") == query.n_tables - 1
        assert dot.count("Scan") == query.n_tables
        assert dot.count("->") == 2 * (query.n_tables - 1)

    def test_operand_roles_labeled(self, query, linear_settings):
        plan = best_plan(optimize_serial(query, linear_settings))
        dot = plan_to_dot(plan)
        assert 'label="outer"' in dot
        assert 'label="inner"' in dot

    def test_escaping(self):
        from repro.plans.plan import ScanPlan

        scan = ScanPlan(mask=1, rows=5.0, cost=(5.0,), order=None, table=0)
        dot = plan_to_dot(scan, ('weird"name',))
        assert '\\"' in dot
