"""Steinbrunn workload generator."""

from __future__ import annotations

import pytest

from repro.query.generator import (
    CARDINALITY_RANGE,
    SteinbrunnGenerator,
    _edges_for,
    make_chain_query,
    make_clique_query,
    make_cycle_query,
    make_star_query,
)
from repro.query.query import JoinGraphKind


class TestDeterminism:
    def test_same_seed_same_query(self):
        a = SteinbrunnGenerator(5).query(6)
        b = SteinbrunnGenerator(5).query(6)
        assert [t.cardinality for t in a.tables] == [t.cardinality for t in b.tables]
        assert a.predicates == b.predicates

    def test_different_seeds_differ(self):
        a = SteinbrunnGenerator(1).query(8)
        b = SteinbrunnGenerator(2).query(8)
        assert [t.cardinality for t in a.tables] != [t.cardinality for t in b.tables]

    def test_sequential_queries_differ(self):
        generator = SteinbrunnGenerator(3)
        a, b = generator.query(6), generator.query(6)
        assert [t.cardinality for t in a.tables] != [t.cardinality for t in b.tables]


class TestStatisticsRanges:
    def test_cardinalities_in_range(self):
        query = SteinbrunnGenerator(0).query(12)
        low, high = CARDINALITY_RANGE
        for table in query.tables:
            assert low <= table.cardinality <= high

    def test_selectivities_valid(self):
        query = SteinbrunnGenerator(0).query(12)
        for predicate in query.predicates:
            assert 0 < predicate.selectivity <= 0.5

    def test_domain_sizes_positive(self):
        table = SteinbrunnGenerator(0).table("X", n_columns=4)
        assert all(column.domain_size >= 2 for column in table.columns)


class TestTopologies:
    def test_star_edges(self):
        assert _edges_for(JoinGraphKind.STAR, 5) == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_chain_edges(self):
        assert _edges_for(JoinGraphKind.CHAIN, 4) == [(0, 1), (1, 2), (2, 3)]

    def test_cycle_edges(self):
        assert _edges_for(JoinGraphKind.CYCLE, 4) == [(0, 1), (1, 2), (2, 3), (0, 3)]

    def test_cycle_of_two_has_single_edge(self):
        assert _edges_for(JoinGraphKind.CYCLE, 2) == [(0, 1)]

    def test_clique_edges(self):
        assert len(_edges_for(JoinGraphKind.CLIQUE, 5)) == 10

    def test_zero_tables_rejected(self):
        with pytest.raises(ValueError):
            _edges_for(JoinGraphKind.CHAIN, 0)

    @pytest.mark.parametrize(
        "maker,kind",
        [
            (make_star_query, JoinGraphKind.STAR),
            (make_chain_query, JoinGraphKind.CHAIN),
            (make_cycle_query, JoinGraphKind.CYCLE),
            (make_clique_query, JoinGraphKind.CLIQUE),
        ],
    )
    def test_convenience_constructors_connected(self, maker, kind):
        query = maker(6, seed=4)
        assert query.n_tables == 6
        assert query.is_connected()
        assert kind.value in query.name


class TestPredicateWiring:
    def test_one_predicate_per_edge(self):
        query = SteinbrunnGenerator(0).query(7, JoinGraphKind.STAR)
        assert len(query.predicates) == 6

    def test_star_hub_has_enough_columns(self):
        query = SteinbrunnGenerator(0).query(9, JoinGraphKind.STAR)
        hub = query.tables[0]
        # Hub joins 8 spokes; distinct columns cycle but must exist.
        assert len(hub.columns) >= 2

    def test_batch_generation(self):
        queries = SteinbrunnGenerator(0).queries(5, 4)
        assert len(queries) == 5
        assert all(q.n_tables == 4 for q in queries)
