"""Constraints and partition-ID decoding (paper Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.config import PlanSpace
from repro.core.constraints import (
    BushyConstraint,
    LinearConstraint,
    constraint_groups,
    max_constraints,
    max_partitions,
    partition_constraints,
    usable_partitions,
)


class TestLinearConstraint:
    def test_excludes_after_without_before(self):
        constraint = LinearConstraint(before=0, after=1)
        assert constraint.excludes(0b0110)  # contains 1, not 0

    def test_allows_both(self):
        assert not LinearConstraint(0, 1).excludes(0b011)

    def test_allows_neither(self):
        assert not LinearConstraint(0, 1).excludes(0b100)

    def test_allows_before_only(self):
        assert not LinearConstraint(0, 1).excludes(0b101)

    def test_singleton_never_excluded(self):
        assert not LinearConstraint(0, 1).excludes(0b10)

    def test_distinct_tables_required(self):
        with pytest.raises(ValueError):
            LinearConstraint(2, 2)


class TestBushyConstraint:
    def test_excludes_yz_without_x(self):
        constraint = BushyConstraint(x=0, y=1, z=2)
        assert constraint.excludes(0b0110)

    def test_allows_with_x(self):
        assert not BushyConstraint(0, 1, 2).excludes(0b0111)

    def test_allows_y_only(self):
        assert not BushyConstraint(0, 1, 2).excludes(0b0010)

    def test_allows_z_with_others(self):
        assert not BushyConstraint(0, 1, 2).excludes(0b1100)

    def test_distinct_tables_required(self):
        with pytest.raises(ValueError):
            BushyConstraint(0, 1, 1)


class TestLimits:
    @pytest.mark.parametrize(
        "n,space,expected",
        [
            (4, PlanSpace.LINEAR, 2),
            (5, PlanSpace.LINEAR, 2),
            (24, PlanSpace.LINEAR, 12),
            (9, PlanSpace.BUSHY, 3),
            (11, PlanSpace.BUSHY, 3),
            (18, PlanSpace.BUSHY, 6),
        ],
    )
    def test_max_constraints(self, n, space, expected):
        assert max_constraints(n, space) == expected

    def test_max_partitions(self):
        assert max_partitions(8, PlanSpace.LINEAR) == 16
        assert max_partitions(9, PlanSpace.BUSHY) == 8

    def test_max_constraints_rejects_empty(self):
        with pytest.raises(ValueError):
            max_constraints(0, PlanSpace.LINEAR)

    @pytest.mark.parametrize(
        "n,workers,space,expected",
        [
            (8, 1, PlanSpace.LINEAR, 1),
            (8, 3, PlanSpace.LINEAR, 2),
            (8, 16, PlanSpace.LINEAR, 16),
            (8, 1000, PlanSpace.LINEAR, 16),
            (9, 100, PlanSpace.BUSHY, 8),
            (6, 7, PlanSpace.BUSHY, 4),
        ],
    )
    def test_usable_partitions(self, n, workers, space, expected):
        assert usable_partitions(n, workers, space) == expected

    def test_usable_partitions_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            usable_partitions(8, 0, PlanSpace.LINEAR)


class TestGroups:
    def test_linear_pairs(self):
        assert constraint_groups(6, PlanSpace.LINEAR) == [(0, 1), (2, 3), (4, 5)]

    def test_linear_odd_leftover(self):
        assert constraint_groups(5, PlanSpace.LINEAR) == [(0, 1), (2, 3), (4,)]

    def test_bushy_triples(self):
        assert constraint_groups(6, PlanSpace.BUSHY) == [(0, 1, 2), (3, 4, 5)]

    def test_bushy_leftovers(self):
        assert constraint_groups(8, PlanSpace.BUSHY) == [(0, 1, 2), (3, 4, 5), (6,), (7,)]


class TestPartitionDecoding:
    def test_zero_constraints(self):
        assert partition_constraints(6, 0, 1, PlanSpace.LINEAR) == ()

    def test_bit_zero_direction(self):
        (constraint,) = partition_constraints(4, 0, 2, PlanSpace.LINEAR)
        assert constraint == LinearConstraint(before=0, after=1)

    def test_bit_one_direction(self):
        (constraint,) = partition_constraints(4, 1, 2, PlanSpace.LINEAR)
        assert constraint == LinearConstraint(before=1, after=0)

    def test_two_constraints_decode_bits(self):
        constraints = partition_constraints(4, 0b10, 4, PlanSpace.LINEAR)
        assert constraints == (
            LinearConstraint(before=0, after=1),
            LinearConstraint(before=3, after=2),
        )

    def test_bushy_directions(self):
        (c0,) = partition_constraints(6, 0, 2, PlanSpace.BUSHY)
        assert c0 == BushyConstraint(x=0, y=1, z=2)
        (c1,) = partition_constraints(6, 1, 2, PlanSpace.BUSHY)
        assert c1 == BushyConstraint(x=1, y=0, z=2)

    def test_complementary_partitions_differ_per_bit(self):
        for partition_id in range(8):
            constraints = partition_constraints(8, partition_id, 8, PlanSpace.LINEAR)
            assert len(constraints) == 3
            for i, constraint in enumerate(constraints):
                expected_flip = bool((partition_id >> i) & 1)
                assert (constraint.before > constraint.after) == expected_flip

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            partition_constraints(8, 0, 3, PlanSpace.LINEAR)

    def test_rejects_out_of_range_id(self):
        with pytest.raises(ValueError):
            partition_constraints(8, 4, 4, PlanSpace.LINEAR)
        with pytest.raises(ValueError):
            partition_constraints(8, -1, 4, PlanSpace.LINEAR)

    def test_rejects_too_many_partitions(self):
        with pytest.raises(ValueError):
            partition_constraints(4, 0, 8, PlanSpace.LINEAR)
        with pytest.raises(ValueError):
            partition_constraints(6, 0, 8, PlanSpace.BUSHY)
