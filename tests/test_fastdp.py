"""Unit tests of the fastdp enumeration core and its backend plumbing.

The differential tests prove frontier equivalence; these tests pin the
stronger drop-in contract — identical worker *statistics* (the raw material
of the simulated-cluster accounting), identical plan trees for the
single-objective case, transparent fallback for unsupported settings, and
the config/CLI/service wiring of ``OptimizerSettings.backend``.
"""

from __future__ import annotations

import pytest

from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    Backend,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.core import fastdp
from repro.core.serial import optimize_serial
from repro.core.worker import optimize_partition
from repro.plans.plan import plan_signature
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

STAT_FIELDS = (
    "n_constraints",
    "admissible_results",
    "splits_considered",
    "plans_considered",
    "plans_kept",
    "table_entries",
    "stored_plans",
    "result_plans",
)


def _pair(query, settings, partition_id=0, n_partitions=1):
    legacy = optimize_partition(
        query, partition_id, n_partitions, settings.replace(backend=Backend.LEGACY)
    )
    fast = optimize_partition(
        query, partition_id, n_partitions, settings.replace(backend=Backend.FASTDP)
    )
    return legacy, fast


def _assert_stats_equal(legacy, fast, context=""):
    for field in STAT_FIELDS:
        assert getattr(legacy.stats, field) == getattr(fast.stats, field), (
            f"{context}: WorkerStats.{field} diverged "
            f"(legacy={getattr(legacy.stats, field)}, "
            f"fastdp={getattr(fast.stats, field)})"
        )


class TestStatisticsParity:
    """Every counter the cluster simulator consumes must match exactly."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_single_objective(self, kind, space):
        query = SteinbrunnGenerator(seed=21).query(7, kind)
        legacy, fast = _pair(query, OptimizerSettings(plan_space=space))
        _assert_stats_equal(legacy, fast, f"{kind.value}/{space.value}")

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_multi_objective(self, space):
        query = SteinbrunnGenerator(seed=22).query(7, JoinGraphKind.STAR)
        settings = OptimizerSettings(plan_space=space, objectives=MULTI_OBJECTIVE)
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, f"multi/{space.value}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]

    def test_partitioned_runs(self):
        query = SteinbrunnGenerator(seed=23).query(8, JoinGraphKind.CYCLE)
        for n_partitions in (2, 4, 8):
            for partition_id in range(n_partitions):
                legacy, fast = _pair(
                    query,
                    OptimizerSettings(),
                    partition_id=partition_id,
                    n_partitions=n_partitions,
                )
                _assert_stats_equal(
                    legacy, fast, f"partition {partition_id}/{n_partitions}"
                )

    def test_bnl_only_operator_set(self):
        query = SteinbrunnGenerator(seed=24).query(6, JoinGraphKind.CHAIN)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, "bnl-only")
        assert legacy.plans[0].cost == fast.plans[0].cost

    def test_single_objective_io_metric_uses_generic_kernel(self):
        query = SteinbrunnGenerator(seed=25).query(6, JoinGraphKind.STAR)
        settings = OptimizerSettings(objectives=(Objective.OUTPUT_ROWS,))
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, "io-metric")
        assert legacy.plans[0].cost == fast.plans[0].cost


class TestPlanTreeEquality:
    """Same decisions in the same order ⇒ bit-identical plan trees."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    def test_single_objective_trees_identical(self, kind):
        query = SteinbrunnGenerator(seed=31).query(8, kind)
        legacy, fast = _pair(query, OptimizerSettings())
        assert plan_signature(legacy.plans[0]) == plan_signature(fast.plans[0])
        assert legacy.plans[0].cost == fast.plans[0].cost
        assert legacy.plans[0].rows == fast.plans[0].rows

    def test_bushy_trees_identical(self):
        query = SteinbrunnGenerator(seed=32).query(7, JoinGraphKind.CHAIN)
        legacy, fast = _pair(query, OptimizerSettings(plan_space=PlanSpace.BUSHY))
        assert plan_signature(legacy.plans[0]) == plan_signature(fast.plans[0])

    def test_multi_objective_frontier_trees_identical_in_order(self):
        query = SteinbrunnGenerator(seed=33).query(6, JoinGraphKind.STAR)
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE)
        legacy, fast = _pair(query, settings)
        assert len(legacy.plans) == len(fast.plans)
        for legacy_plan, fast_plan in zip(legacy.plans, fast.plans):
            assert plan_signature(legacy_plan) == plan_signature(fast_plan)


class TestFallback:
    """Unsupported settings run on the legacy core — transparently."""

    def test_supports(self):
        assert fastdp.supports(OptimizerSettings())
        assert fastdp.supports(OptimizerSettings(objectives=MULTI_OBJECTIVE))
        assert not fastdp.supports(OptimizerSettings(consider_orders=True))
        assert not fastdp.supports(
            OptimizerSettings(objectives=PARAMETRIC_OBJECTIVES, parametric=True)
        )

    def test_direct_call_rejects_unsupported(self):
        query = SteinbrunnGenerator(seed=41).query(4, JoinGraphKind.CHAIN)
        settings = OptimizerSettings(
            consider_orders=True, backend=Backend.FASTDP
        )
        with pytest.raises(ValueError, match="fastdp does not support"):
            fastdp.optimize_partition_fastdp(query, 0, 1, settings)

    @pytest.mark.parametrize(
        "settings",
        [
            OptimizerSettings(consider_orders=True, backend=Backend.FASTDP),
            OptimizerSettings(
                objectives=PARAMETRIC_OBJECTIVES,
                parametric=True,
                backend=Backend.FASTDP,
            ),
        ],
        ids=["orders", "parametric"],
    )
    def test_worker_falls_back(self, settings):
        query = SteinbrunnGenerator(seed=42, clustered_tables=True).query(
            5, JoinGraphKind.STAR
        )
        via_fastdp_setting = optimize_partition(query, 0, 1, settings)
        via_legacy = optimize_partition(
            query, 0, 1, settings.replace(backend=Backend.LEGACY)
        )
        assert sorted(p.cost for p in via_fastdp_setting.plans) == sorted(
            p.cost for p in via_legacy.plans
        )
        assert (
            via_fastdp_setting.stats.plans_considered
            == via_legacy.stats.plans_considered
        )


class TestBackendWiring:
    """Config coercion, MPQ, service cache keys, and the CLI flag."""

    def test_settings_coerce_backend_string(self):
        assert OptimizerSettings(backend="fastdp").backend is Backend.FASTDP
        assert OptimizerSettings(backend="legacy").backend is Backend.LEGACY

    def test_settings_reject_unknown_backend(self):
        with pytest.raises(ValueError):
            OptimizerSettings(backend="warp-speed")

    def test_mpq_same_best_cost_across_backends(self):
        from repro.algorithms.mpq import optimize_mpq

        query = SteinbrunnGenerator(seed=43).query(9, JoinGraphKind.STAR)
        legacy = optimize_mpq(query, 8, OptimizerSettings())
        fast = optimize_mpq(query, 8, OptimizerSettings(backend=Backend.FASTDP))
        assert legacy.n_partitions == fast.n_partitions
        assert legacy.best.cost == fast.best.cost
        assert plan_signature(legacy.best) == plan_signature(fast.best)

    def test_service_serves_both_backends_with_distinct_fingerprints(self):
        from repro.service import OptimizerService

        query = SteinbrunnGenerator(seed=44).query(7, JoinGraphKind.CHAIN)
        with OptimizerService(n_workers=4) as service:
            legacy = service.optimize(query, OptimizerSettings())
            fast = service.optimize(
                query, OptimizerSettings(backend=Backend.FASTDP)
            )
            fast_again = service.optimize(
                query, OptimizerSettings(backend=Backend.FASTDP)
            )
        assert legacy.best.cost == fast.best.cost
        assert legacy.fingerprint != fast.fingerprint
        assert not fast.cached and fast_again.cached
        assert fast_again.best.cost == fast.best.cost

    def test_cli_backend_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.query.generator import make_star_query
        from repro.query.io import save_query

        path = tmp_path / "query.json"
        save_query(make_star_query(6, seed=9), str(path))
        assert main(["optimize", str(path), "--backend", "fastdp", "--json"]) == 0
        fast_payload = json.loads(capsys.readouterr().out)
        assert main(["optimize", str(path), "--backend", "legacy", "--json"]) == 0
        legacy_payload = json.loads(capsys.readouterr().out)
        assert fast_payload["plans"] == legacy_payload["plans"]

    def test_serial_defaults_to_legacy_backend(self):
        assert OptimizerSettings().backend is Backend.LEGACY

    def test_empty_partition_result_possible(self):
        """A 1-table query exercises the degenerate no-join path."""
        query = SteinbrunnGenerator(seed=45).query(1, JoinGraphKind.CHAIN)
        result = optimize_serial(query, OptimizerSettings(backend=Backend.FASTDP))
        assert len(result.plans) == 1
        assert result.plans[0].mask == 1
