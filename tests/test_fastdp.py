"""Unit tests of the fastdp enumeration core and its backend plumbing.

The differential tests prove frontier equivalence; these tests pin the
stronger drop-in contract — identical worker *statistics* (the raw material
of the simulated-cluster accounting), identical plan trees (including
interesting-order and parametric settings, which the fast core handles
natively), the capability-declaring backend registry with its ``AUTO``
resolution, ``backend_used`` observability end to end, and the
config/CLI/service wiring of ``OptimizerSettings.backend``.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    Backend,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.core import fastdp
from repro.core.serial import optimize_serial
from repro.core.worker import (
    ALL_CAPABILITIES,
    Capability,
    EnumerationBackend,
    capability_matrix,
    optimize_partition,
    registered_backends,
    required_capabilities,
    resolve_backend,
)
from repro.plans.plan import plan_signature
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

#: vecdp registers unconditionally but is *available* only with numpy, so
#: what AUTO resolves to for a plain query depends on the environment.  The
#: tests assert the resolution honestly instead of assuming either extreme.
HAS_NUMPY = importlib.util.find_spec("numpy") is not None
AUTO_BACKEND = "vecdp" if HAS_NUMPY else "fastdp"

STAT_FIELDS = (
    "n_constraints",
    "admissible_results",
    "splits_considered",
    "plans_considered",
    "plans_kept",
    "table_entries",
    "stored_plans",
    "result_plans",
)


def _pair(query, settings, partition_id=0, n_partitions=1):
    legacy = optimize_partition(
        query, partition_id, n_partitions, settings.replace(backend=Backend.LEGACY)
    )
    fast = optimize_partition(
        query, partition_id, n_partitions, settings.replace(backend=Backend.FASTDP)
    )
    return legacy, fast


def _assert_stats_equal(legacy, fast, context=""):
    for field in STAT_FIELDS:
        assert getattr(legacy.stats, field) == getattr(fast.stats, field), (
            f"{context}: WorkerStats.{field} diverged "
            f"(legacy={getattr(legacy.stats, field)}, "
            f"fastdp={getattr(fast.stats, field)})"
        )


class TestStatisticsParity:
    """Every counter the cluster simulator consumes must match exactly."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_single_objective(self, kind, space):
        query = SteinbrunnGenerator(seed=21).query(7, kind)
        legacy, fast = _pair(query, OptimizerSettings(plan_space=space))
        _assert_stats_equal(legacy, fast, f"{kind.value}/{space.value}")

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_multi_objective(self, space):
        query = SteinbrunnGenerator(seed=22).query(7, JoinGraphKind.STAR)
        settings = OptimizerSettings(plan_space=space, objectives=MULTI_OBJECTIVE)
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, f"multi/{space.value}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]

    def test_partitioned_runs(self):
        query = SteinbrunnGenerator(seed=23).query(8, JoinGraphKind.CYCLE)
        for n_partitions in (2, 4, 8):
            for partition_id in range(n_partitions):
                legacy, fast = _pair(
                    query,
                    OptimizerSettings(),
                    partition_id=partition_id,
                    n_partitions=n_partitions,
                )
                _assert_stats_equal(
                    legacy, fast, f"partition {partition_id}/{n_partitions}"
                )

    def test_bnl_only_operator_set(self):
        query = SteinbrunnGenerator(seed=24).query(6, JoinGraphKind.CHAIN)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, "bnl-only")
        assert legacy.plans[0].cost == fast.plans[0].cost

    def test_single_objective_io_metric_uses_generic_kernel(self):
        query = SteinbrunnGenerator(seed=25).query(6, JoinGraphKind.STAR)
        settings = OptimizerSettings(objectives=(Objective.OUTPUT_ROWS,))
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, "io-metric")
        assert legacy.plans[0].cost == fast.plans[0].cost

    @pytest.mark.parametrize("space", list(PlanSpace))
    @pytest.mark.parametrize("clustered", [False, True], ids=["flat", "clustered"])
    def test_interesting_orders(self, space, clustered):
        query = SteinbrunnGenerator(
            seed=26, clustered_tables=clustered
        ).query(6, JoinGraphKind.CYCLE)
        settings = OptimizerSettings(plan_space=space, consider_orders=True)
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, f"orders/{space.value}/{clustered}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]
        assert [p.order for p in legacy.plans] == [p.order for p in fast.plans]

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_multi_objective_with_orders(self, space):
        query = SteinbrunnGenerator(seed=27, clustered_tables=True).query(
            6, JoinGraphKind.CHAIN
        )
        settings = OptimizerSettings(
            plan_space=space, objectives=MULTI_OBJECTIVE, consider_orders=True
        )
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, f"multi-orders/{space.value}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]
        assert [p.order for p in legacy.plans] == [p.order for p in fast.plans]

    def test_multi_objective_orders_alpha_approximate(self):
        """α > 1 with orders: pruning is order-sensitive; must still match."""
        query = SteinbrunnGenerator(seed=28, clustered_tables=True).query(
            7, JoinGraphKind.STAR
        )
        settings = OptimizerSettings(
            objectives=MULTI_OBJECTIVE, consider_orders=True, alpha=10.0
        )
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, "multi-orders-alpha")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_parametric(self, space):
        query = SteinbrunnGenerator(seed=29).query(6, JoinGraphKind.STAR)
        settings = OptimizerSettings(
            plan_space=space, objectives=PARAMETRIC_OBJECTIVES, parametric=True
        )
        legacy, fast = _pair(query, settings)
        _assert_stats_equal(legacy, fast, f"parametric/{space.value}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]

    def test_orders_partitioned_runs(self):
        query = SteinbrunnGenerator(seed=30, clustered_tables=True).query(
            8, JoinGraphKind.CYCLE
        )
        settings = OptimizerSettings(consider_orders=True)
        for n_partitions in (2, 8):
            for partition_id in range(n_partitions):
                legacy, fast = _pair(
                    query,
                    settings,
                    partition_id=partition_id,
                    n_partitions=n_partitions,
                )
                _assert_stats_equal(
                    legacy, fast, f"orders partition {partition_id}/{n_partitions}"
                )


class TestPlanTreeEquality:
    """Same decisions in the same order ⇒ bit-identical plan trees."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    def test_single_objective_trees_identical(self, kind):
        query = SteinbrunnGenerator(seed=31).query(8, kind)
        legacy, fast = _pair(query, OptimizerSettings())
        assert plan_signature(legacy.plans[0]) == plan_signature(fast.plans[0])
        assert legacy.plans[0].cost == fast.plans[0].cost
        assert legacy.plans[0].rows == fast.plans[0].rows

    def test_bushy_trees_identical(self):
        query = SteinbrunnGenerator(seed=32).query(7, JoinGraphKind.CHAIN)
        legacy, fast = _pair(query, OptimizerSettings(plan_space=PlanSpace.BUSHY))
        assert plan_signature(legacy.plans[0]) == plan_signature(fast.plans[0])

    def test_multi_objective_frontier_trees_identical_in_order(self):
        query = SteinbrunnGenerator(seed=33).query(6, JoinGraphKind.STAR)
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE)
        legacy, fast = _pair(query, settings)
        assert len(legacy.plans) == len(fast.plans)
        for legacy_plan, fast_plan in zip(legacy.plans, fast.plans):
            assert plan_signature(legacy_plan) == plan_signature(fast_plan)

    def test_orders_frontier_trees_identical_in_order(self):
        query = SteinbrunnGenerator(seed=34, clustered_tables=True).query(
            6, JoinGraphKind.CHAIN
        )
        settings = OptimizerSettings(consider_orders=True)
        legacy, fast = _pair(query, settings)
        assert len(legacy.plans) == len(fast.plans)
        for legacy_plan, fast_plan in zip(legacy.plans, fast.plans):
            assert plan_signature(legacy_plan) == plan_signature(fast_plan)
            assert legacy_plan.order == fast_plan.order

    def test_parametric_envelope_trees_identical_in_order(self):
        query = SteinbrunnGenerator(seed=35).query(6, JoinGraphKind.CYCLE)
        settings = OptimizerSettings(
            objectives=PARAMETRIC_OBJECTIVES, parametric=True
        )
        legacy, fast = _pair(query, settings)
        assert len(legacy.plans) == len(fast.plans)
        for legacy_plan, fast_plan in zip(legacy.plans, fast.plans):
            assert plan_signature(legacy_plan) == plan_signature(fast_plan)


@pytest.mark.skipif(not HAS_NUMPY, reason="vecdp requires numpy")
class TestVecdpStatisticsParity:
    """The array core is a drop-in on its declared capabilities: identical
    WorkerStats counters, identical plan trees, honest backend_used."""

    @staticmethod
    def _vec_pair(query, settings, partition_id=0, n_partitions=1):
        legacy = optimize_partition(
            query, partition_id, n_partitions, settings.replace(backend=Backend.LEGACY)
        )
        vec = optimize_partition(
            query, partition_id, n_partitions, settings.replace(backend=Backend.VECDP)
        )
        assert legacy.stats.backend_used == "legacy"
        assert vec.stats.backend_used == "vecdp"
        return legacy, vec

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_single_objective(self, kind, space):
        query = SteinbrunnGenerator(seed=21).query(7, kind)
        legacy, vec = self._vec_pair(query, OptimizerSettings(plan_space=space))
        _assert_stats_equal(legacy, vec, f"vecdp {kind.value}/{space.value}")

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_serial_multi_objective(self, space):
        query = SteinbrunnGenerator(seed=22).query(7, JoinGraphKind.STAR)
        settings = OptimizerSettings(plan_space=space, objectives=MULTI_OBJECTIVE)
        legacy, vec = self._vec_pair(query, settings)
        _assert_stats_equal(legacy, vec, f"vecdp multi/{space.value}")
        assert [p.cost for p in legacy.plans] == [p.cost for p in vec.plans]

    def test_partitioned_runs(self):
        query = SteinbrunnGenerator(seed=23).query(8, JoinGraphKind.CYCLE)
        for n_partitions in (2, 4, 8):
            for partition_id in range(n_partitions):
                legacy, vec = self._vec_pair(
                    query,
                    OptimizerSettings(),
                    partition_id=partition_id,
                    n_partitions=n_partitions,
                )
                _assert_stats_equal(
                    legacy, vec, f"vecdp partition {partition_id}/{n_partitions}"
                )

    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_plan_trees_identical_in_order(self, space):
        query = SteinbrunnGenerator(seed=24).query(7, JoinGraphKind.CHAIN)
        settings = OptimizerSettings(plan_space=space, objectives=MULTI_OBJECTIVE)
        legacy, vec = self._vec_pair(query, settings)
        assert len(legacy.plans) == len(vec.plans)
        for legacy_plan, vec_plan in zip(legacy.plans, vec.plans):
            assert plan_signature(legacy_plan) == plan_signature(vec_plan)

    def test_bnl_only_operator_restriction(self):
        query = SteinbrunnGenerator(seed=25).query(6, JoinGraphKind.CLIQUE)
        settings = OptimizerSettings(use_all_join_algorithms=False)
        legacy, vec = self._vec_pair(query, settings)
        _assert_stats_equal(legacy, vec, "vecdp bnl-only")
        assert [p.cost for p in legacy.plans] == [p.cost for p in vec.plans]


class TestCapabilityRegistry:
    """The capability-declaring backend architecture and AUTO resolution."""

    def test_fastdp_declares_everything(self):
        assert fastdp.CAPABILITIES == ALL_CAPABILITIES
        matrix = capability_matrix()
        assert set(matrix) == {"legacy", "fastdp", "vecdp"}
        for name in ("legacy", "fastdp"):
            assert all(matrix[name].values()), matrix
        # vecdp is honest about its narrower feature set.
        assert matrix["vecdp"]["multi_objective"]
        assert matrix["vecdp"]["bushy_space"]
        assert not matrix["vecdp"]["interesting_orders"]
        assert not matrix["vecdp"]["parametric_costs"]
        assert not matrix["vecdp"]["alpha_approximation"]

    def test_required_capabilities_derivation(self):
        assert required_capabilities(OptimizerSettings()) == Capability(0)
        assert (
            required_capabilities(OptimizerSettings(consider_orders=True))
            == Capability.INTERESTING_ORDERS
        )
        needed = required_capabilities(
            OptimizerSettings(
                plan_space=PlanSpace.BUSHY,
                objectives=PARAMETRIC_OBJECTIVES,
                parametric=True,
            )
        )
        assert Capability.PARAMETRIC_COSTS in needed
        assert Capability.BUSHY_SPACE in needed
        assert Capability.MULTI_OBJECTIVE in needed
        assert Capability.INTERESTING_ORDERS not in needed
        # alpha > 1 pruning is its own capability: it matters only for
        # multi-objective non-parametric runs, where it changes the frontier.
        alpha = required_capabilities(
            OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=2.0)
        )
        assert Capability.ALPHA_APPROXIMATION in alpha
        assert (
            Capability.ALPHA_APPROXIMATION
            not in required_capabilities(OptimizerSettings(alpha=2.0))
        )

    @pytest.mark.parametrize(
        ("settings", "expected"),
        [
            (OptimizerSettings(), AUTO_BACKEND),
            (OptimizerSettings(consider_orders=True), "fastdp"),
            (OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=10.0), "fastdp"),
            (
                OptimizerSettings(objectives=PARAMETRIC_OBJECTIVES, parametric=True),
                "fastdp",
            ),
        ],
        ids=["plain", "orders", "multi-alpha", "parametric"],
    )
    def test_auto_resolves_to_fastest_capable_backend(self, settings, expected):
        assert settings.backend is Backend.AUTO
        assert resolve_backend(settings).backend.value == expected

    def test_explicit_backends_resolve_to_themselves(self):
        for backend in (Backend.LEGACY, Backend.FASTDP):
            settings = OptimizerSettings(
                consider_orders=True, backend=backend
            )
            assert resolve_backend(settings).backend is backend

    def test_incapable_explicit_backend_is_an_error_not_a_fallback(self):
        """Requesting a backend that lacks a capability must fail loudly."""
        from repro.core import worker

        limited = EnumerationBackend(
            backend=Backend.FASTDP,
            capabilities=ALL_CAPABILITIES & ~Capability.INTERESTING_ORDERS,
            speed_rank=10,
            loader=lambda: fastdp.optimize_partition_fastdp,
        )
        original = worker._BACKEND_REGISTRY[Backend.FASTDP]
        worker.register_backend(limited)
        try:
            settings = OptimizerSettings(
                consider_orders=True, backend=Backend.FASTDP
            )
            with pytest.raises(ValueError, match="INTERESTING_ORDERS"):
                resolve_backend(settings)
            # AUTO routes around the gap instead of failing.
            auto = resolve_backend(settings.replace(backend=Backend.AUTO))
            assert auto.backend is Backend.LEGACY
        finally:
            worker.register_backend(original)

    def test_registered_backends_sorted_by_speed_rank(self):
        ranks = [d.speed_rank for d in registered_backends()]
        assert ranks == sorted(ranks)
        assert registered_backends()[0].backend is Backend.VECDP
        available = [d for d in registered_backends() if d.available()]
        expected = Backend.VECDP if HAS_NUMPY else Backend.FASTDP
        assert available[0].backend is expected

    def test_auto_is_not_registrable(self):
        from repro.core import worker

        with pytest.raises(ValueError, match="AUTO"):
            worker.register_backend(
                EnumerationBackend(
                    backend=Backend.AUTO,
                    capabilities=ALL_CAPABILITIES,
                    speed_rank=1,
                    loader=lambda: fastdp.optimize_partition_fastdp,
                )
            )

    def test_auto_falls_back_to_fastdp_without_numpy(self, monkeypatch):
        """With numpy absent, vecdp stays registered but unavailable: AUTO
        routes plain queries to fastdp, and requesting vecdp explicitly is a
        loud error naming the missing module."""
        from repro.core import worker

        monkeypatch.setattr(
            worker, "_find_module", lambda module: module != "numpy"
        )
        try:
            vec = worker._BACKEND_REGISTRY[Backend.VECDP]
            assert not vec.available()
            assert "numpy not installed" == vec.unavailable_reason()
            assert resolve_backend(OptimizerSettings()).backend is Backend.FASTDP
            with pytest.raises(ValueError, match="numpy not installed"):
                resolve_backend(OptimizerSettings(backend=Backend.VECDP))
        finally:
            monkeypatch.undo()


class TestBackendUsedObservability:
    """backend_used is recorded per partition and surfaced at every layer."""

    def test_worker_stats_record_backend(self):
        query = SteinbrunnGenerator(seed=50).query(5, JoinGraphKind.CHAIN)
        auto = optimize_partition(query, 0, 1, OptimizerSettings())
        assert auto.stats.backend_used == AUTO_BACKEND
        legacy = optimize_partition(
            query, 0, 1, OptimizerSettings(backend=Backend.LEGACY)
        )
        assert legacy.stats.backend_used == "legacy"

    def test_master_result_surfaces_backend(self):
        from repro.core.master import optimize_parallel

        query = SteinbrunnGenerator(seed=51).query(7, JoinGraphKind.STAR)
        result = optimize_parallel(query, 4, OptimizerSettings())
        assert result.backend_used == AUTO_BACKEND
        assert all(
            r.stats.backend_used == AUTO_BACKEND
            for r in result.partition_results
        )

    def test_mpq_report_surfaces_backend(self):
        from repro.algorithms.mpq import optimize_mpq

        query = SteinbrunnGenerator(seed=52).query(6, JoinGraphKind.CYCLE)
        report = optimize_mpq(
            query, 2, OptimizerSettings(backend=Backend.LEGACY)
        )
        assert report.backend_used == "legacy"

    def test_service_result_surfaces_backend_and_replays_it_on_hits(self):
        from repro.service import OptimizerService

        query = SteinbrunnGenerator(seed=53).query(6, JoinGraphKind.CHAIN)
        with OptimizerService(n_workers=2) as service:
            fresh = service.optimize(query)
            hit = service.optimize(query)
        assert not fresh.cached and hit.cached
        assert fresh.backend_used == AUTO_BACKEND
        assert hit.backend_used == AUTO_BACKEND

    def test_serve_batch_json_reports_backend(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.query.generator import make_chain_query
        from repro.query.io import save_query

        path = tmp_path / "query.json"
        save_query(make_chain_query(5, seed=3), str(path))
        assert main(["serve-batch", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        result = payload["rounds"][0]["results"][0]
        assert result["backend_used"] == AUTO_BACKEND

    def test_cli_backends_command_lists_matrix(self, capsys):
        import json

        from repro.cli import main

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"legacy", "fastdp", "vecdp"}
        assert payload["fastdp"]["capabilities"]["interesting_orders"]
        assert payload["fastdp"]["capabilities"]["parametric_costs"]
        assert payload["vecdp"]["requires"] == ["numpy"]
        assert payload["vecdp"]["available"] is HAS_NUMPY
        if HAS_NUMPY:
            assert payload["vecdp"]["unavailable_reason"] is None
        else:
            assert "numpy" in payload["vecdp"]["unavailable_reason"]


class TestBackendWiring:
    """Config coercion, MPQ, service cache keys, and the CLI flag."""

    def test_settings_coerce_backend_string(self):
        assert OptimizerSettings(backend="fastdp").backend is Backend.FASTDP
        assert OptimizerSettings(backend="legacy").backend is Backend.LEGACY
        assert OptimizerSettings(backend="auto").backend is Backend.AUTO

    def test_settings_reject_unknown_backend(self):
        with pytest.raises(ValueError):
            OptimizerSettings(backend="warp-speed")

    def test_mpq_same_best_cost_across_backends(self):
        from repro.algorithms.mpq import optimize_mpq

        query = SteinbrunnGenerator(seed=43).query(9, JoinGraphKind.STAR)
        legacy = optimize_mpq(query, 8, OptimizerSettings())
        fast = optimize_mpq(query, 8, OptimizerSettings(backend=Backend.FASTDP))
        assert legacy.n_partitions == fast.n_partitions
        assert legacy.best.cost == fast.best.cost
        assert plan_signature(legacy.best) == plan_signature(fast.best)

    def test_service_serves_both_backends_with_distinct_fingerprints(self):
        from repro.service import OptimizerService

        query = SteinbrunnGenerator(seed=44).query(7, JoinGraphKind.CHAIN)
        with OptimizerService(n_workers=4) as service:
            legacy = service.optimize(
                query, OptimizerSettings(backend=Backend.LEGACY)
            )
            fast = service.optimize(
                query, OptimizerSettings(backend=Backend.FASTDP)
            )
            fast_again = service.optimize(
                query, OptimizerSettings(backend=Backend.FASTDP)
            )
        assert legacy.best.cost == fast.best.cost
        assert legacy.fingerprint != fast.fingerprint
        assert not fast.cached and fast_again.cached
        assert fast_again.best.cost == fast.best.cost

    def test_service_auto_and_explicit_backend_share_cache_entries(self):
        """AUTO is fingerprinted as the backend it resolves to."""
        from repro.service import OptimizerService

        query = SteinbrunnGenerator(seed=46).query(6, JoinGraphKind.STAR)
        with OptimizerService(n_workers=2) as service:
            via_auto = service.optimize(query, OptimizerSettings())
            via_explicit = service.optimize(
                query, OptimizerSettings(backend=AUTO_BACKEND)
            )
        assert via_auto.fingerprint == via_explicit.fingerprint
        assert not via_auto.cached and via_explicit.cached

    def test_cli_backend_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.query.generator import make_star_query
        from repro.query.io import save_query

        path = tmp_path / "query.json"
        save_query(make_star_query(6, seed=9), str(path))
        assert main(["optimize", str(path), "--backend", "fastdp", "--json"]) == 0
        fast_payload = json.loads(capsys.readouterr().out)
        assert main(["optimize", str(path), "--backend", "legacy", "--json"]) == 0
        legacy_payload = json.loads(capsys.readouterr().out)
        assert fast_payload["plans"] == legacy_payload["plans"]

    def test_default_backend_is_auto_resolving_to_fastest_available(self):
        assert OptimizerSettings().backend is Backend.AUTO
        assert resolve_backend(OptimizerSettings()).backend.value == AUTO_BACKEND

    def test_empty_partition_result_possible(self):
        """A 1-table query exercises the degenerate no-join path."""
        query = SteinbrunnGenerator(seed=45).query(1, JoinGraphKind.CHAIN)
        result = optimize_serial(query, OptimizerSettings(backend=Backend.FASTDP))
        assert len(result.plans) == 1
        assert result.plans[0].mask == 1
