"""θ-free canonicalization and envelope serving, across every front door.

The refactor's contract has three parts, and each gets its own section:

* **θ-free keys** — a parametric request's θ never reaches the fingerprint,
  so every θ of one query shape maps to one cache entry;
* **envelope entries** — a parametric miss materializes the whole
  lower-envelope frontier plus its breakpoint index once, and every later
  θ-specific request binds against it with zero additional DP runs — through
  the plain service, the threaded sharded gateway, the asyncio front-end,
  and the out-of-process shard server alike;
* **bit-identity** — a θ bound from a cached envelope is the *same plan*
  a fresh optimization at that θ produces, differentially checked on a
  seeded 200-request sweep, and envelope entries survive the disk-tier and
  network wire codecs bit-identically.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.algorithms.pqo import optimize_parametric, parametric_settings
from repro.config import OptimizerSettings
from repro.core.envelope import (
    FULL_THETA_DOMAIN,
    EnvelopeIndex,
    best_index_at,
    build_envelope_index,
    theta_selection_key,
)
from repro.cost.parametric import envelope_filter, switching_points
from repro.cluster.serialization import settings_from_wire, settings_to_wire
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind
from repro.service import (
    ENVELOPE_ENTRY,
    SCALAR_ENTRY,
    DiskTier,
    OptimizerService,
    ShardedOptimizerGateway,
    fingerprint,
)
from repro.service.net import result_from_wire, result_to_wire
from repro.service.tiers import entry_from_wire, entry_to_wire

PARAMETRIC = parametric_settings()


def query_pool(seed: int, count: int, tables=(4, 6)):
    """A deterministic pool of mixed-topology queries."""
    rng = random.Random(seed)
    generator = SteinbrunnGenerator(seed, clustered_tables=True)
    kinds = (JoinGraphKind.STAR, JoinGraphKind.CHAIN, JoinGraphKind.CYCLE)
    return [
        generator.query(rng.randint(*tables), rng.choice(kinds))
        for __ in range(count)
    ]


def oracle_bind(frontier, theta):
    """The reference θ-binding over an independent frontier (plan equality)."""
    return frontier[
        min(
            range(len(frontier)),
            key=lambda i: theta_selection_key(frontier[i].cost, theta),
        )
    ]


# ------------------------------------------------------------- θ-free keys


class TestThetaFreeFingerprint:
    def test_every_theta_shares_one_fingerprint(self):
        query = query_pool(3, 1)[0]
        unbound = fingerprint(query, PARAMETRIC, 4)
        assert {
            fingerprint(query, PARAMETRIC.replace(theta=theta), 4)
            for theta in (0.0, 0.25, 0.5, 0.75, 1.0)
        } == {unbound}

    def test_parametric_and_plain_do_not_collide(self):
        query = query_pool(3, 1)[0]
        assert fingerprint(query, PARAMETRIC, 4) != fingerprint(
            query, OptimizerSettings(), 4
        )

    def test_theta_requires_parametric(self):
        with pytest.raises(ValueError, match="parametric"):
            OptimizerSettings(theta=0.5)

    @pytest.mark.parametrize("theta", [-0.1, 1.1, 7.0])
    def test_theta_domain_validated(self, theta):
        with pytest.raises(ValueError):
            PARAMETRIC.replace(theta=theta)

    def test_without_theta(self):
        bound = PARAMETRIC.replace(theta=0.4)
        assert bound.without_theta() == PARAMETRIC
        # Already unbound: identity, not a copy.
        assert PARAMETRIC.without_theta() is PARAMETRIC


# --------------------------------------------------------- envelope index


def random_frontiers(seed: int, count: int):
    """Seeded synthetic envelope-filtered cost frontiers of varied size."""
    rng = random.Random(seed)
    frontiers = []
    while len(frontiers) < count:
        lines = [
            (rng.uniform(0, 100), rng.uniform(0, 100))
            for __ in range(rng.randint(1, 9))
        ]
        keep = envelope_filter(lines)  # returns surviving *indices*
        if keep:
            frontiers.append([lines[i] for i in keep])
    return frontiers


class TestEnvelopeIndex:
    def test_select_matches_reference_everywhere(self):
        rng = random.Random(99)
        for costs in random_frontiers(17, 60):
            index = build_envelope_index_from_costs(costs)
            probes = [0.0, 1.0, *(rng.random() for __ in range(20))]
            # Exact breakpoints are the adversarial probes: two owners tie.
            probes.extend(index.breakpoints)
            for theta in probes:
                assert index.select(costs, theta) == best_index_at(costs, theta)

    def test_every_frontier_plan_owns_a_segment(self):
        # envelope_filter keeps only plans that strictly win somewhere, so
        # the index must reference every position — the guarantee that makes
        # adjacent-segment candidate lookup in select() sufficient.
        for costs in random_frontiers(23, 40):
            index = build_envelope_index_from_costs(costs)
            assert set(index.segments) == set(range(len(costs)))

    def test_wire_round_trip_is_bit_identical(self):
        for costs in random_frontiers(31, 25):
            index = build_envelope_index_from_costs(costs)
            decoded = EnvelopeIndex.from_wire(
                json.loads(json.dumps(index.to_wire()))
            )
            assert decoded == index
            for theta in (0.0, 0.5, 1.0, *index.breakpoints):
                assert decoded.select(costs, theta) == index.select(costs, theta)

    def test_validation_rejects_malformed_indexes(self):
        with pytest.raises(ValueError, match="segment owners"):
            EnvelopeIndex(breakpoints=(0.5,), segments=(0,))
        with pytest.raises(ValueError, match="sorted"):
            EnvelopeIndex(breakpoints=(0.7, 0.3), segments=(0, 1, 0))
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            EnvelopeIndex(breakpoints=(1.5,), segments=(0, 1))

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            best_index_at([], 0.5)
        with pytest.raises(ValueError, match="empty"):
            build_envelope_index([])


def build_envelope_index_from_costs(costs):
    """Index synthetic cost vectors without building Plan objects."""
    points = switching_points(costs)
    bounds = [0.0, *points, 1.0]
    return EnvelopeIndex(
        breakpoints=tuple(points),
        segments=tuple(
            best_index_at(costs, (low + high) / 2.0)
            for low, high in zip(bounds, bounds[1:])
        ),
    )


# ------------------------------------------------------- service envelope


class TestServiceEnvelopes:
    def test_parametric_miss_materializes_envelope_entry(self):
        query = query_pool(5, 1)[0]
        with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
            service.optimize(query)
            entry = service.cache.peek(fingerprint(query, PARAMETRIC, 1))
            assert entry.kind == ENVELOPE_ENTRY
            assert entry.envelope is not None
            assert len(entry.envelope.segments) == len(entry.envelope.breakpoints) + 1
            assert entry.provenance.theta_domain == FULL_THETA_DOMAIN

    def test_plain_miss_stays_scalar(self):
        query = query_pool(5, 1)[0]
        with OptimizerService(n_workers=1) as service:
            service.optimize(query)
            entry = service.cache.peek(fingerprint(query, service.settings, 1))
            assert entry.kind == SCALAR_ENTRY
            assert entry.envelope is None
            assert entry.provenance.theta_domain is None

    def test_bound_request_returns_single_plan_with_theta(self):
        query = query_pool(5, 1)[0]
        with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
            unbound = service.optimize(query)
            assert unbound.theta is None
            bound = service.optimize(query, PARAMETRIC.replace(theta=0.3))
            assert bound.theta == 0.3
            assert len(bound.plans) == 1
            assert bound.cached

    def test_leader_bound_request_runs_one_dp_and_binds(self):
        # A θ-bound request on a cold cache: the DP runs θ-free (the entry
        # holds the full frontier) but the requester gets its bound plan.
        query = query_pool(8, 1)[0]
        with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
            bound = service.optimize(query, PARAMETRIC.replace(theta=0.6))
            assert not bound.cached
            assert bound.theta == 0.6
            assert len(bound.plans) == 1
            entry = service.cache.peek(fingerprint(query, PARAMETRIC, 1))
            assert entry.kind == ENVELOPE_ENTRY
            assert len(entry.canonical_plans) >= 1
            # The leader's own bind does not count as an envelope hit...
            assert service.envelope_hits == 0
            # ...but the next θ does.
            service.optimize(query, PARAMETRIC.replace(theta=0.1))
            assert service.envelope_hits == 1

    def test_differential_oracle_200_request_sweep(self):
        """Acceptance sweep: 200 seeded θ-requests, every answer bit-identical
        to an independent per-θ optimization, zero DP runs after the first
        materialization per shape."""
        pool = query_pool(41, 10, tables=(4, 6))
        rng = random.Random(41)
        oracles = {
            query.name: optimize_parametric(query).plans for query in pool
        }
        requests = []
        for __ in range(200):
            query = rng.choice(pool)
            # Mix uniform θs with exact switching θs (the tie cases).
            frontier = oracles[query.name]
            switching = switching_points([plan.cost for plan in frontier])
            theta = (
                rng.choice(switching)
                if switching and rng.random() < 0.3
                else rng.random()
            )
            requests.append((query, theta))

        with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
            for query in pool:  # materialize one envelope per shape
                service.optimize(query)
            stats_before = service.cache.snapshot()
            for query, theta in requests:
                served = service.optimize(query, PARAMETRIC.replace(theta=theta))
                assert served.cached
                assert len(served.plans) == 1
                expected = oracle_bind(oracles[query.name], theta)
                assert served.plans[0] == expected, (query.name, theta)
            stats_after = service.cache.snapshot()
            # Every one of the 200 was a cache hit — zero additional DP runs.
            assert stats_after.misses == stats_before.misses
            assert stats_after.hits == stats_before.hits + 200
            assert service.envelope_hits == 200


# ----------------------------------------------------- gateway replays


class TestGatewayThetaReplay:
    def test_threaded_replay_zero_additional_dp_runs(self):
        from repro.bench.traffic import (
            TrafficProfile,
            generate_traffic,
            replay_threaded,
            unique_fingerprints,
        )

        profile = TrafficProfile(
            n_requests=96,
            n_unique=8,
            tables=(4, 5),
            features=(("parametric", 1.0),),
            parametric_thetas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
            seed=29,
        )
        schedule = generate_traffic(profile)
        assert any(request.theta is not None for request in schedule)
        expected_runs = len(unique_fingerprints(schedule))
        with ShardedOptimizerGateway(n_shards=3, settings=PARAMETRIC) as gateway:
            report = replay_threaded(gateway, schedule, n_clients=6)
            stats = gateway.stats()
        # θ never splits a fingerprint: DP runs == unique shapes exactly.
        assert stats.optimizations == expected_runs
        assert stats.envelope_hits > 0
        for request, result in zip(schedule, report.results):
            assert result.theta == request.theta
            if request.theta is not None:
                assert len(result.plans) == 1

    def test_threaded_bound_answers_match_fresh_optimization(self):
        pool = query_pool(61, 4, tables=(4, 5))
        oracles = {q.name: optimize_parametric(q).plans for q in pool}
        thetas = (0.0, 0.15, 0.5, 0.85, 1.0)
        with ShardedOptimizerGateway(
            n_shards=2, n_workers=1, settings=PARAMETRIC
        ) as gateway:
            for query in pool:
                for theta in thetas:
                    served = gateway.optimize(
                        query, PARAMETRIC.replace(theta=theta)
                    )
                    assert served.plans[0] == oracle_bind(
                        oracles[query.name], theta
                    ), (query.name, theta)
            assert gateway.stats().optimizations == len(pool)

    def test_concurrent_distinct_thetas_coalesce_to_one_run(self):
        # N cold requests for different θs of one shape race: singleflight
        # must collapse them onto one envelope-producing DP run, and each
        # follower binds its own θ.
        query = query_pool(71, 1, tables=(5, 5))[0]
        oracle = optimize_parametric(query).plans
        thetas = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95]
        results: dict[float, object] = {}
        errors: list[BaseException] = []
        with ShardedOptimizerGateway(
            n_shards=1, n_workers=1, settings=PARAMETRIC
        ) as gateway:
            barrier = threading.Barrier(len(thetas))

            def request(theta: float) -> None:
                barrier.wait()
                try:
                    results[theta] = gateway.optimize(
                        query, PARAMETRIC.replace(theta=theta)
                    )
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=request, args=(theta,))
                for theta in thetas
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = gateway.stats()
        assert not errors
        assert stats.optimizations == 1
        for theta in thetas:
            assert results[theta].plans[0] == oracle_bind(oracle, theta)

    def test_async_replay_zero_additional_dp_runs(self):
        import asyncio

        from repro.bench.traffic import (
            TrafficProfile,
            generate_traffic,
            replay_async,
            unique_fingerprints,
        )
        from repro.service import AsyncOptimizerGateway

        profile = TrafficProfile(
            n_requests=96,
            n_unique=8,
            tables=(4, 5),
            features=(("parametric", 1.0),),
            parametric_thetas=(0.1, 0.3, 0.5, 0.7, 0.9),
            seed=37,
        )
        schedule = generate_traffic(profile)
        expected_runs = len(unique_fingerprints(schedule))

        async def run():
            async with AsyncOptimizerGateway(
                n_shards=3, settings=PARAMETRIC, tenant_share=1.0
            ) as front:
                report = await replay_async(front, schedule, n_clients=6)
                return report, front.stats()

        report, stats = asyncio.run(run())
        assert stats.gateway.optimizations == expected_runs
        assert stats.gateway.envelope_hits > 0
        for request, result in zip(schedule, report.results):
            assert result.theta == request.theta

    def test_async_bound_answers_match_fresh_optimization(self):
        import asyncio

        from repro.service import AsyncOptimizerGateway

        pool = query_pool(83, 3, tables=(4, 5))
        oracles = {q.name: optimize_parametric(q).plans for q in pool}
        thetas = (0.0, 0.25, 0.5, 0.75, 1.0)

        async def run():
            async with AsyncOptimizerGateway(
                n_shards=2, n_workers=1, settings=PARAMETRIC, tenant_share=1.0
            ) as front:
                # Different θs of one shape submitted concurrently coalesce.
                for query in pool:
                    served = await asyncio.gather(
                        *[
                            front.optimize(query, PARAMETRIC.replace(theta=theta))
                            for theta in thetas
                        ]
                    )
                    for theta, result in zip(thetas, served):
                        assert result.plans[0] == oracle_bind(
                            oracles[query.name], theta
                        ), (query.name, theta)
                return front.stats()

        stats = asyncio.run(run())
        assert stats.gateway.optimizations == len(pool)


# ------------------------------------------------------- network serving


class TestNetworkThetaServing:
    def test_shard_server_binds_from_cached_envelope(self, tmp_path):
        from repro.service import NetworkOptimizerGateway
        from tests.test_net import ServerThread

        pool = query_pool(97, 3, tables=(4, 5))
        oracles = {q.name: optimize_parametric(q).plans for q in pool}
        thetas = (0.0, 0.2, 0.5, 0.8, 1.0)
        listen = f"unix:{tmp_path / 'shard.sock'}"
        with ServerThread(listen, n_workers=1, settings=PARAMETRIC) as running:
            assert running.server.address is not None
            gateway = NetworkOptimizerGateway(
                [listen], settings=PARAMETRIC, n_workers=1
            )
            try:
                for query in pool:
                    for theta in thetas:
                        served = gateway.optimize(
                            query, PARAMETRIC.replace(theta=theta)
                        )
                        assert served.theta == theta
                        assert len(served.plans) == 1
                        assert served.plans[0] == oracle_bind(
                            oracles[query.name], theta
                        ), (query.name, theta)
                stats = gateway.stats()
            finally:
                gateway.close()
        (shard_stats,) = stats["shards"].values()
        # One DP run per shape server-side; every other θ answered from the
        # cached envelope.
        assert shard_stats["optimizations"] == len(pool)
        assert shard_stats["envelope_hits"] == len(pool) * (len(thetas) - 1)


# ------------------------------------------------------------ wire codecs


def make_envelope_entry(seed: int = 47):
    """A real envelope entry produced through the service."""
    query = query_pool(seed, 1, tables=(5, 6))[0]
    with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
        service.optimize(query)
        return service.cache.peek(fingerprint(query, PARAMETRIC, 1))


class TestEnvelopeWire:
    def test_entry_round_trips_bit_identically(self):
        entry = make_envelope_entry()
        decoded = entry_from_wire(json.loads(json.dumps(entry_to_wire(entry))))
        assert decoded.kind == ENVELOPE_ENTRY
        assert decoded.envelope == entry.envelope
        assert decoded.canonical_plans == entry.canonical_plans
        assert decoded.provenance == entry.provenance
        # Both sides bind every θ — including exact breakpoints — the same.
        for theta in (0.0, 0.33, 1.0, *entry.envelope.breakpoints):
            assert decoded.select_index(theta) == entry.select_index(theta)

    def test_scalar_entry_wire_stays_backward_compatible(self):
        entry = make_envelope_entry()
        wire = entry_to_wire(entry)
        # A pre-envelope record has neither field; decode must default.
        wire.pop("kind")
        wire.pop("envelope")
        legacy = entry_from_wire(wire)
        assert legacy.kind == SCALAR_ENTRY
        assert legacy.envelope is None

    def test_disk_tier_round_trip(self, tmp_path):
        entry = make_envelope_entry()
        log = tmp_path / "cache.log"
        with DiskTier(log) as tier:
            tier.put("deadbeef", entry)
            assert list(tier.entries()) == [
                ("deadbeef", entry.provenance, ENVELOPE_ENTRY)
            ]
        with DiskTier(log) as tier:  # restart: recovered from the log
            recovered = tier.get("deadbeef")
            assert recovered.kind == ENVELOPE_ENTRY
            assert recovered.envelope == entry.envelope
            assert recovered.canonical_plans == entry.canonical_plans
            assert list(tier.entries()) == [
                ("deadbeef", entry.provenance, ENVELOPE_ENTRY)
            ]

    def test_settings_codec_carries_theta(self):
        bound = PARAMETRIC.replace(theta=0.375)
        wire = json.loads(json.dumps(settings_to_wire(bound)))
        assert settings_from_wire(wire) == bound
        unbound_wire = json.loads(json.dumps(settings_to_wire(PARAMETRIC)))
        assert "theta" not in unbound_wire  # old peers keep decoding
        assert settings_from_wire(unbound_wire) == PARAMETRIC

    def test_result_codec_carries_theta(self):
        query = query_pool(53, 1)[0]
        with OptimizerService(n_workers=1, settings=PARAMETRIC) as service:
            bound = service.optimize(query, PARAMETRIC.replace(theta=0.7))
        wire = json.loads(json.dumps(result_to_wire(bound)))
        decoded = result_from_wire(wire)
        assert decoded.theta == 0.7
        assert decoded.plans == bound.plans
        # Absent θ decodes to None (backward compatibility).
        wire.pop("theta")
        assert result_from_wire(wire).theta is None
