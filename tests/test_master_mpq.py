"""Master orchestration and the central MPQ correctness invariant:

MPQ with any usable power-of-two worker count returns the same optimal cost
as serial dynamic programming — over both plan spaces, many seeds, and all
join-graph topologies.
"""

from __future__ import annotations

import pytest

from repro.algorithms.mpq import optimize_mpq
from repro.config import OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.core.worker import optimize_partition
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


class TestMasterMechanics:
    def test_caps_at_max_partitions(self, star6, linear_settings):
        result = optimize_parallel(star6, 1000, linear_settings)
        assert result.n_partitions == 8  # 2^(6/2)
        assert result.requested_workers == 1000

    def test_rounds_down_to_power_of_two(self, star6, linear_settings):
        result = optimize_parallel(star6, 7, linear_settings)
        assert result.n_partitions == 4

    def test_partition_results_returned(self, star6, linear_settings):
        result = optimize_parallel(star6, 4, linear_settings)
        assert len(result.partition_results) == 4
        ids = [r.stats.partition_id for r in result.partition_results]
        assert ids == [0, 1, 2, 3]

    def test_best_raises_on_empty(self):
        from repro.core.master import MasterResult

        empty = MasterResult(plans=[], n_partitions=1, requested_workers=1)
        with pytest.raises(ValueError):
            _ = empty.best

    def test_worker_maxima_default_to_zero_on_empty(self):
        # Regression: with no partition results attached (synthetic results,
        # the case ``backend_used`` explicitly supports), these properties
        # raised ``ValueError: max() arg is an empty sequence``.
        from repro.core.master import MasterResult

        empty = MasterResult(plans=[], n_partitions=1, requested_workers=1)
        assert empty.max_worker_wall_s == 0.0
        assert empty.max_worker_table_entries == 0
        assert empty.backend_used == ""

    def test_executor_result_count_checked(self, star6, linear_settings):
        class BrokenExecutor:
            def map_partitions(self, query, n_partitions, settings):
                return []

        with pytest.raises(RuntimeError):
            optimize_parallel(star6, 4, linear_settings, executor=BrokenExecutor())

    def test_timings_populated(self, star6, linear_settings):
        result = optimize_parallel(star6, 4, linear_settings)
        assert result.total_wall_s > 0
        assert result.max_worker_wall_s > 0
        assert result.master_prune_s >= 0


class TestMPQEqualsSerial:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("workers", [2, 4, 8, 16])
    def test_linear(self, seed, workers):
        query = SteinbrunnGenerator(seed).query(8)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, workers, settings)
        assert parallel.best.cost[0] == pytest.approx(serial_cost)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bushy(self, seed, workers):
        query = SteinbrunnGenerator(seed).query(7)
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, workers, settings)
        assert parallel.best.cost[0] == pytest.approx(serial_cost)

    @pytest.mark.parametrize(
        "kind", [JoinGraphKind.CHAIN, JoinGraphKind.STAR, JoinGraphKind.CYCLE,
                 JoinGraphKind.CLIQUE]
    )
    def test_topologies(self, kind):
        query = SteinbrunnGenerator(50).query(8, kind)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, 16, settings)
        assert parallel.best.cost[0] == pytest.approx(serial_cost)

    def test_with_interesting_orders(self):
        query = SteinbrunnGenerator(51).query(6)
        settings = OptimizerSettings(consider_orders=True)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        parallel = optimize_parallel(query, 8, settings)
        assert parallel.best.cost[0] == pytest.approx(serial_cost)

    def test_optimum_lives_in_exactly_matching_partition(self):
        """The partition whose constraints the optimal order satisfies
        returns a plan of globally optimal cost."""
        query = SteinbrunnGenerator(52).query(6)
        settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        optimal_order = best_plan(optimize_serial(query, settings)).join_order()
        position = {table: i for i, table in enumerate(optimal_order)}
        partition_id = 0
        for bit_index, pair_start in enumerate(range(0, 6 - 1, 2)):
            if position[pair_start] > position[pair_start + 1]:
                partition_id |= 1 << bit_index
        result = optimize_partition(query, partition_id, 8, settings)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        assert min(p.cost[0] for p in result.plans) == pytest.approx(serial_cost)


class TestMPQReport:
    def test_report_fields(self, star6, linear_settings):
        report = optimize_mpq(star6, 4, linear_settings)
        assert report.n_partitions == 4
        assert report.simulated_time_ms > 0
        assert report.network_bytes > 0
        assert report.max_worker_memory_relations > 0
        assert report.best.cost[0] > 0
        assert len(report.plans) == 1

    def test_network_linear_in_workers(self, star6, linear_settings):
        small = optimize_mpq(star6, 2, linear_settings)
        large = optimize_mpq(star6, 8, linear_settings)
        assert large.network_bytes == pytest.approx(4 * small.network_bytes, rel=0.2)

    def test_memory_decreases_with_workers(self, star6, linear_settings):
        serial = optimize_mpq(star6, 1, linear_settings)
        parallel = optimize_mpq(star6, 8, linear_settings)
        assert (
            parallel.max_worker_memory_relations
            < serial.max_worker_memory_relations
        )

    def test_worker_compute_decreases_with_workers(self, star6, linear_settings):
        serial = optimize_mpq(star6, 1, linear_settings)
        parallel = optimize_mpq(star6, 8, linear_settings)
        assert parallel.max_worker_time_ms < serial.max_worker_time_ms
