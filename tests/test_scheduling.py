"""Heterogeneous worker scheduling (paper footnote 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulator import ClusterModel
from repro.config import OptimizerSettings
from repro.core.master import optimize_parallel
from repro.core.scheduling import (
    WorkerProfile,
    assign_partitions,
    makespan,
    simulate_heterogeneous_run,
)
from repro.query.generator import SteinbrunnGenerator


def profiles(*speeds):
    return [WorkerProfile(name=f"w{i}", speed=s) for i, s in enumerate(speeds)]


class TestWorkerProfile:
    def test_speed_validated(self):
        with pytest.raises(ValueError):
            WorkerProfile("bad", speed=0.0)
        with pytest.raises(ValueError):
            WorkerProfile("bad", speed=-1.0)


class TestAssignPartitions:
    def test_uniform_split(self):
        assignment = assign_partitions(8, profiles(1, 1, 1, 1))
        assert [len(part) for part in assignment] == [2, 2, 2, 2]

    def test_every_partition_once(self):
        assignment = assign_partitions(16, profiles(3, 1, 2))
        flat = sorted(pid for partitions in assignment for pid in partitions)
        assert flat == list(range(16))

    def test_proportional_to_speed(self):
        assignment = assign_partitions(8, profiles(3, 1))
        assert len(assignment[0]) == 6
        assert len(assignment[1]) == 2

    def test_rounding_favours_larger_remainder(self):
        assignment = assign_partitions(4, profiles(1, 1, 1))
        counts = sorted(len(part) for part in assignment)
        assert counts == [1, 1, 2]

    def test_slow_worker_may_get_nothing(self):
        assignment = assign_partitions(2, profiles(10, 10, 0.01))
        assert len(assignment[2]) == 0

    def test_single_worker_takes_all(self):
        assignment = assign_partitions(8, profiles(5))
        assert assignment == [list(range(8))]

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_partitions(0, profiles(1))
        with pytest.raises(ValueError):
            assign_partitions(4, [])

    @settings(max_examples=50, deadline=None)
    @given(
        n_partitions=st.integers(min_value=1, max_value=128),
        speeds=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10
        ),
    )
    def test_complete_and_disjoint(self, n_partitions, speeds):
        assignment = assign_partitions(n_partitions, profiles(*speeds))
        flat = sorted(pid for partitions in assignment for pid in partitions)
        assert flat == list(range(n_partitions))

    @settings(max_examples=50, deadline=None)
    @given(
        n_partitions=st.integers(min_value=8, max_value=128),
        speeds=st.lists(
            st.floats(min_value=0.5, max_value=4.0), min_size=2, max_size=8
        ),
    )
    def test_near_optimal_makespan(self, n_partitions, speeds):
        """Proportional assignment is within one partition of the fluid bound."""
        workers = profiles(*speeds)
        assignment = assign_partitions(n_partitions, workers)
        fluid = n_partitions / sum(speed for speed in speeds)
        worst_unit = max(1.0 / worker.speed for worker in workers)
        assert makespan(assignment, workers) <= fluid + worst_unit + 1e-9


class TestHeterogeneousTiming:
    @pytest.fixture
    def run(self):
        query = SteinbrunnGenerator(77).query(8)
        result = optimize_parallel(query, 8, OptimizerSettings())
        return query, result

    def test_faster_worker_finishes_sooner(self, run):
        query, result = run
        timing = simulate_heterogeneous_run(
            ClusterModel(), query, result, profiles(4, 1)
        )
        # Worker 0 is 4x faster and owns ~4x the partitions; its compute time
        # should be within ~2x of worker 1's, far from the 4x-skew of a
        # uniform split.
        a, b = timing.worker_compute_s
        assert max(a, b) / min(a, b) < 2.0

    def test_heterogeneous_beats_uniform_on_skewed_cluster(self, run):
        """Proportional assignment beats ignoring the speed difference."""
        query, result = run
        skewed = profiles(4, 1)
        proportional = simulate_heterogeneous_run(
            ClusterModel(), query, result, skewed
        )
        # Emulate a uniform split on the same skewed cluster: both workers
        # get half the partitions, the slow one dominates.
        uniform = simulate_heterogeneous_run(
            ClusterModel(), query, result, profiles(1, 1)
        )
        slow_uniform = max(
            timing / 1.0 for timing in uniform.worker_compute_s
        )  # slow worker runs its half at speed 1
        assert proportional.workers_done_s < slow_uniform * 4 / 1.5

    def test_network_matches_homogeneous(self, run):
        query, result = run
        timing = simulate_heterogeneous_run(
            ClusterModel(), query, result, profiles(2, 1, 1)
        )
        from repro.cluster.simulator import simulate_mpq_run

        homogeneous = simulate_mpq_run(ClusterModel(), query, result)
        assert timing.network_bytes == homogeneous.network_bytes

    def test_total_decomposition(self, run):
        query, result = run
        timing = simulate_heterogeneous_run(
            ClusterModel(), query, result, profiles(1, 2)
        )
        assert timing.total_s == pytest.approx(
            timing.dispatch_s + timing.workers_done_s + timing.collect_s
        )
        assert len(timing.assignment) == 2
