"""Experiment-log comparison tool."""

from __future__ import annotations

import pytest

from repro.bench.compare import compare_logs, format_comparison

OLD = """\
== Figure 2: MPQ scaling
-- MPQ linear 10
 workers      time_ms    w_time_ms   memory_rel      network_B
       1        15.92        13.80         1023           1608
       2        13.03        10.86          768           3216
[fig2 completed in 20.0s wall-clock]
"""

SAME = OLD

FASTER = OLD.replace("15.92", "10.00").replace("13.03", " 9.00")

STRUCTURAL = OLD.replace("1023", "1024")

DROPPED_POINT = """\
== Figure 2: MPQ scaling
-- MPQ linear 10
 workers      time_ms    w_time_ms   memory_rel      network_B
       1        15.92        13.80         1023           1608
[fig2 completed in 20.0s wall-clock]
"""


class TestCompare:
    def test_identical_logs_clean(self):
        deltas = compare_logs(OLD, SAME)
        assert len(deltas) == 1
        assert deltas[0].is_clean()
        assert deltas[0].worst_time_ratio == 1.0

    def test_time_change_detected(self):
        (delta,) = compare_logs(OLD, FASTER)
        assert not delta.is_clean()
        assert delta.time_changes[1] == (15.92, 10.0)
        assert delta.worst_time_ratio < 1.0

    def test_structural_change_detected(self):
        (delta,) = compare_logs(OLD, STRUCTURAL)
        assert delta.structural_changes == [1]
        assert not delta.is_clean()

    def test_dropped_points_detected(self):
        (delta,) = compare_logs(OLD, DROPPED_POINT)
        assert delta.only_in_old == [2]
        assert not delta.is_clean()

    def test_tolerance(self):
        slightly = OLD.replace("15.92", "16.20")  # ~1.8% slower
        (delta,) = compare_logs(OLD, slightly)
        assert delta.is_clean(tolerance=0.05)
        assert not delta.is_clean(tolerance=0.01)

    def test_disjoint_blocks_ignored(self):
        other = OLD.replace("Figure 2", "Figure 9")
        assert compare_logs(OLD, other) == []


class TestFormat:
    def test_clean_summary(self):
        report = format_comparison(compare_logs(OLD, SAME))
        assert "1/1 series unchanged" in report

    def test_reports_regressions(self):
        report = format_comparison(compare_logs(OLD, FASTER))
        assert "x0.6" in report or "x0.7" in report
        assert "MPQ linear 10" in report

    def test_reports_structural(self):
        report = format_comparison(compare_logs(OLD, STRUCTURAL))
        assert "STRUCTURAL" in report
