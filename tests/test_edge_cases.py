"""Edge cases and failure injection across the stack."""

from __future__ import annotations

import pytest

from repro.algorithms.mpq import optimize_mpq
from repro.algorithms.sma import optimize_sma
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.core.worker import optimize_partition
from repro.plans.plan import ScanPlan
from repro.query.query import Query
from repro.query.schema import Column, Table
from tests.conftest import make_manual_query


class TestTinyQueries:
    def test_single_table(self):
        query = make_manual_query([42])
        result = optimize_serial(query, OptimizerSettings())
        (plan,) = result.plans
        assert isinstance(plan, ScanPlan)
        assert plan.rows == 42.0

    def test_single_table_parallel(self):
        query = make_manual_query([42])
        result = optimize_parallel(query, 8, OptimizerSettings())
        assert result.n_partitions == 1  # no pair to constrain
        assert isinstance(result.best, ScanPlan)

    def test_two_tables_linear(self):
        query = make_manual_query([10, 20], [(0, 1, 0.5)])
        result = optimize_parallel(query, 2, OptimizerSettings())
        serial = optimize_serial(query, OptimizerSettings())
        assert result.best.cost == best_plan(serial).cost
        assert result.n_partitions == 2

    def test_two_tables_bushy_cannot_partition(self):
        query = make_manual_query([10, 20], [(0, 1, 0.5)])
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        result = optimize_parallel(query, 8, settings)
        assert result.n_partitions == 1

    def test_three_tables_bushy_two_partitions(self):
        query = make_manual_query([10, 20, 30], [(0, 1, 0.5), (1, 2, 0.5)])
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        result = optimize_parallel(query, 2, settings)
        assert result.n_partitions == 2
        serial = optimize_serial(query, settings)
        assert result.best.cost[0] == best_plan(serial).cost[0]


class TestCrossProductOnlyQueries:
    def test_no_predicates_still_optimizes(self):
        query = make_manual_query([5, 7, 11])
        result = optimize_serial(query, OptimizerSettings())
        plan = best_plan(result)
        assert plan.rows == pytest.approx(5 * 7 * 11)

    def test_no_predicates_parallel_matches(self):
        query = make_manual_query([5, 7, 11, 13])
        serial = best_plan(optimize_serial(query, OptimizerSettings()))
        parallel = optimize_parallel(query, 4, OptimizerSettings())
        assert parallel.best.cost[0] == pytest.approx(serial.cost[0])

    def test_disconnected_graph(self):
        # Two joined pairs with no predicate between them.
        query = make_manual_query(
            [10, 20, 30, 40], [(0, 1, 0.1), (2, 3, 0.1)]
        )
        assert not query.is_connected()
        serial = best_plan(optimize_serial(query, OptimizerSettings()))
        parallel = optimize_parallel(query, 4, OptimizerSettings())
        assert parallel.best.cost[0] == pytest.approx(serial.cost[0])


class TestExtremeStatistics:
    def test_zero_cardinality_table(self):
        query = Query(
            tables=(
                Table("empty", 0, (Column("c0", 10),)),
                Table("full", 100, (Column("c0", 10),)),
            ),
            predicates=(),
        )
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        # The one-row floor keeps costs positive and finite.
        assert plan.rows >= 1.0
        assert plan.cost[0] > 0

    def test_huge_cardinalities_no_overflow(self):
        query = make_manual_query([10**9, 10**9, 10**9])
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        assert plan.cost[0] < float("inf")

    def test_selectivity_floor(self):
        query = make_manual_query([100, 100], [(0, 1, 1e-12)])
        plan = best_plan(optimize_serial(query, OptimizerSettings()))
        assert plan.rows == 1.0


class TestMismatchedWorkerCounts:
    @pytest.mark.parametrize("workers", [3, 5, 6, 7, 9, 100])
    def test_non_power_of_two_workers(self, workers):
        query = make_manual_query([10, 20, 30, 40, 50, 60])
        result = optimize_parallel(query, workers, OptimizerSettings())
        assert result.n_partitions & (result.n_partitions - 1) == 0
        serial = best_plan(optimize_serial(query, OptimizerSettings()))
        assert result.best.cost[0] == pytest.approx(serial.cost[0])


class TestFailureInjection:
    def test_executor_exception_propagates(self, star6, linear_settings):
        class ExplodingExecutor:
            def map_partitions(self, query, n_partitions, settings):
                raise RuntimeError("node crashed")

        with pytest.raises(RuntimeError, match="node crashed"):
            optimize_parallel(star6, 4, linear_settings, executor=ExplodingExecutor())

    def test_executor_partial_results_detected(self, star6, linear_settings):
        from repro.core.worker import optimize_partition as real

        class DroppingExecutor:
            def map_partitions(self, query, n_partitions, settings):
                return [real(query, 0, n_partitions, settings)]

        with pytest.raises(RuntimeError, match="results"):
            optimize_parallel(star6, 4, linear_settings, executor=DroppingExecutor())

    def test_partition_out_of_range_rejected(self, star6, linear_settings):
        with pytest.raises(ValueError):
            optimize_partition(star6, 4, 4, linear_settings)


class TestSettingsCombinations:
    @pytest.mark.parametrize("plan_space", [PlanSpace.LINEAR, PlanSpace.BUSHY])
    @pytest.mark.parametrize("orders", [False, True])
    def test_all_single_objective_combos(self, plan_space, orders):
        query = make_manual_query(
            [100, 200, 300, 400], [(0, 1, 0.1), (1, 2, 0.1), (2, 3, 0.1)]
        )
        settings = OptimizerSettings(plan_space=plan_space, consider_orders=orders)
        serial = best_plan(optimize_serial(query, settings))
        parallel = optimize_parallel(query, 2, settings)
        assert parallel.best.cost[0] == pytest.approx(serial.cost[0])

    def test_multi_objective_with_orders(self):
        query = make_manual_query(
            [100, 200, 300, 400], [(0, 1, 0.1), (1, 2, 0.1), (2, 3, 0.1)]
        )
        settings = OptimizerSettings(
            objectives=MULTI_OBJECTIVE, alpha=1.0, consider_orders=True
        )
        serial = optimize_serial(query, settings)
        parallel = optimize_parallel(query, 4, settings)
        serial_best = min(plan.cost[0] for plan in serial.plans)
        parallel_best = min(plan.cost[0] for plan in parallel.plans)
        assert parallel_best == pytest.approx(serial_best)

    def test_sma_on_tiny_query(self):
        query = make_manual_query([10, 20], [(0, 1, 0.5)])
        report = optimize_sma(query, 4, OptimizerSettings())
        assert report.best.mask == 0b11

    def test_mpq_report_on_single_table(self):
        query = make_manual_query([42])
        report = optimize_mpq(query, 4)
        assert report.n_partitions == 1
        assert report.network_bytes > 0
