"""SMA baseline: correctness and the coordination-cost profile."""

from __future__ import annotations

import pytest

from repro.algorithms.sma import _level_masks, optimize_sma
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.util.bitset import popcount


@pytest.fixture
def query():
    return SteinbrunnGenerator(8).query(7)


class TestLevelMasks:
    def test_counts(self):
        assert len(_level_masks(6, 2)) == 15
        assert len(_level_masks(6, 6)) == 1

    def test_sizes(self):
        assert all(popcount(mask) == 3 for mask in _level_masks(7, 3))

    def test_ascending_order(self):
        masks = _level_masks(8, 4)
        assert masks == sorted(masks)


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_matches_serial_linear(self, query, workers):
        serial_cost = best_plan(optimize_serial(query, OptimizerSettings())).cost[0]
        sma = optimize_sma(query, workers, OptimizerSettings())
        assert sma.best.cost[0] == pytest.approx(serial_cost)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_serial_bushy(self, workers):
        query = SteinbrunnGenerator(9).query(6)
        settings = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        serial_cost = best_plan(optimize_serial(query, settings)).cost[0]
        sma = optimize_sma(query, workers, settings)
        assert sma.best.cost[0] == pytest.approx(serial_cost)

    def test_multi_objective_frontier(self):
        query = SteinbrunnGenerator(10).query(6)
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=1.0)
        serial = optimize_serial(query, settings)
        sma = optimize_sma(query, 4, settings)
        assert {p.cost for p in sma.plans} == {p.cost for p in serial.plans}

    def test_rejects_zero_workers(self, query):
        with pytest.raises(ValueError):
            optimize_sma(query, 0)


class TestCoordinationProfile:
    def test_round_count(self, query):
        sma = optimize_sma(query, 4)
        assert len(sma.rounds) == query.n_tables - 1

    def test_round_sizes_cover_levels(self, query):
        sma = optimize_sma(query, 4)
        from math import comb

        for round_stats in sma.rounds:
            assert round_stats.n_sets == comb(query.n_tables, round_stats.size)

    def test_memotable_holds_everything(self, query):
        sma = optimize_sma(query, 4)
        assert sma.memotable_entries == (1 << query.n_tables) - 1

    def test_network_grows_with_workers(self, query):
        """The memotable broadcast makes traffic grow with worker count."""
        bytes_by_workers = [
            optimize_sma(query, workers).network_bytes for workers in (1, 2, 4, 8)
        ]
        assert bytes_by_workers == sorted(bytes_by_workers)
        assert bytes_by_workers[-1] > 3 * bytes_by_workers[0]

    def test_network_explodes_vs_mpq(self, query):
        """Figure 1's headline: SMA ships far more bytes, and its lead grows
        exponentially with query size (the memotable is exponential in n)."""
        from repro.algorithms.mpq import optimize_mpq

        sma = optimize_sma(query, 8)
        mpq = optimize_mpq(query, 8)
        ratio_small = sma.network_bytes / mpq.network_bytes
        assert ratio_small > 5

        bigger = SteinbrunnGenerator(8).query(10)
        ratio_large = (
            optimize_sma(bigger, 8).network_bytes
            / optimize_mpq(bigger, 8).network_bytes
        )
        assert ratio_large > 3 * ratio_small

    def test_simulated_time_degrades_at_scale(self, query):
        """Many workers mean more broadcast traffic and higher round cost."""
        few = optimize_sma(query, 2)
        many = optimize_sma(query, 64)
        assert many.simulated_seconds > few.simulated_seconds

    def test_worker_ops_balanced(self, query):
        sma = optimize_sma(query, 4)
        for round_stats in sma.rounds:
            ops = round_stats.worker_plans_considered
            if max(ops) > 30:  # skew is expected on tiny rounds
                assert min(ops) > 0

    def test_round_bytes_informational(self, query):
        sma = optimize_sma(query, 4)
        assert sum(r.round_bytes for r in sma.rounds) <= sma.network_bytes
