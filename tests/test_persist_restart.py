"""Warm restarts over the disk tier, and the herd gate it must hold under.

These are the acceptance tests the CI tier-1 job runs with a throwaway
cache directory: a restarted process serves every previously-seen
fingerprint from disk with zero DP runs, and singleflight keeps holding —
one DP run per unique fingerprint — when 64 clients stampede a gateway
whose shards carry disk-backed tiered caches.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_threaded,
    unique_fingerprints,
)
from repro.cluster.executors import SerialPartitionExecutor
from repro.service import DiskTier, ShardedOptimizerGateway, TieredPlanCache


class CountingSerialExecutor(SerialPartitionExecutor):
    """Serial executor counting DP runs (``map_partitions`` invocations)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        return super().map_partitions(query, n_partitions, settings)


def tiered_gateway(cache_dir, executors, n_shards=4):
    """A sharded gateway with counting executors and per-shard disk logs."""

    def executor_factory():
        executor = CountingSerialExecutor()
        executors.append(executor)
        return executor

    return ShardedOptimizerGateway(
        n_shards=n_shards,
        n_workers=2,
        executor_factory=executor_factory,
        cache_factory=lambda index: TieredPlanCache(
            memory_capacity=64, disk=DiskTier(cache_dir / f"shard-{index}.log")
        ),
    )


@pytest.fixture
def schedule():
    return generate_traffic(
        TrafficProfile(seed=29, n_requests=96, n_unique=12, tables=(4, 6))
    )


class TestWarmRestart:
    def test_restart_serves_everything_from_disk(self, tmp_path, schedule):
        """After a process restart (new gateway, same cache dir), the whole
        replayed schedule is answered from the tiers: zero DP runs, every
        response cached, disk seeding the first touch of each fingerprint."""
        n_unique = len(unique_fingerprints(schedule))

        cold_executors: list[CountingSerialExecutor] = []
        with tiered_gateway(tmp_path, cold_executors) as gateway:
            cold = replay_threaded(gateway, schedule, n_clients=8)
        assert sum(e.calls for e in cold_executors) == n_unique

        # A brand-new gateway over the same logs: fresh executors, empty
        # memory tiers — a restart in miniature.
        warm_executors: list[CountingSerialExecutor] = []
        with tiered_gateway(tmp_path, warm_executors) as gateway:
            warm = replay_threaded(gateway, schedule, n_clients=8)
            stats = gateway.stats()

        assert sum(e.calls for e in warm_executors) == 0
        assert stats.optimizations == 0
        assert all(result.cached for result in warm.results)
        assert {r.fingerprint for r in warm.results} == {
            r.fingerprint for r in cold.results
        }
        # The working set was seeded from disk: each unique fingerprint's
        # first warm touch read the log (later touches hit its promotion).
        disk_hits = sum(
            getattr(shard.cache, "disk_hits", 0) for shard in stats.shards
        )
        assert disk_hits >= n_unique

    def test_restart_preserves_results_bitwise(self, tmp_path, schedule):
        """Cold-run plans and warm-served plans are equal, cost vectors and
        all — the disk round trip is lossless end to end."""
        request = schedule[0]
        executors: list[CountingSerialExecutor] = []
        with tiered_gateway(tmp_path, executors, n_shards=1) as gateway:
            cold = gateway.optimize(request.query, request.settings)
        with tiered_gateway(tmp_path, executors, n_shards=1) as gateway:
            warm = gateway.optimize(request.query, request.settings)
        assert warm.cached
        assert warm.plans == cold.plans
        assert [p.cost for p in warm.plans] == [p.cost for p in cold.plans]


class TestHerdWithDiskTier:
    def test_64_client_herd_pays_one_run_per_fingerprint(self, tmp_path):
        """ISSUE acceptance: with the disk tier enabled (gets may do I/O),
        singleflight still coalesces a 64-client herd down to exactly one
        DP run per unique fingerprint."""
        herd_schedule = generate_traffic(
            TrafficProfile(seed=67, n_requests=256, n_unique=8, tables=(4, 5))
        )
        n_unique = len(unique_fingerprints(herd_schedule))
        executors: list[CountingSerialExecutor] = []
        with tiered_gateway(tmp_path, executors) as gateway:
            report = replay_threaded(gateway, herd_schedule, n_clients=64)
            stats = gateway.stats()
        assert sum(e.calls for e in executors) == n_unique
        assert stats.optimizations == n_unique
        assert len(report.results) == len(herd_schedule)
        # Everyone got an answer: leaders ran, the rest were coalesced
        # followers or cache hits — nobody re-optimized.
        served_cached = sum(1 for result in report.results if result.cached)
        assert served_cached == len(herd_schedule) - n_unique
