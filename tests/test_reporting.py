"""ASCII chart rendering and miscellaneous error paths."""

from __future__ import annotations

import pytest

from repro.bench.harness import ScalingPoint, ScalingSeries
from repro.bench.reporting import chart_figure, log_chart
from repro.config import PlanSpace
from repro.core.constraints import BushyConstraint, LinearConstraint
from repro.core.partitioning import _constraints_by_group, admissible_join_results


def make_series(label, values):
    points = [
        ScalingPoint(
            workers=2**i,
            time_ms=value,
            worker_time_ms=value / 2,
            memory_relations=100 / (i + 1),
            network_bytes=1000 * (i + 1),
        )
        for i, value in enumerate(values)
    ]
    return ScalingSeries(label=label, points=points)


class TestLogChart:
    def test_contains_legend_and_axis(self):
        series = make_series("linear 12", [100, 75, 56, 42])
        chart = log_chart([series])
        assert "A = linear 12" in chart
        assert "workers: 1 .. 8" in chart
        assert "time_ms vs workers" in chart

    def test_multiple_series_letters(self):
        a = make_series("mpq", [100, 80, 60])
        b = make_series("sma", [100, 120, 150])
        chart = log_chart([a, b])
        assert "A = mpq" in chart
        assert "B = sma" in chart
        assert "B" in chart.splitlines()[1] or any(
            "B" in line for line in chart.splitlines()
        )

    def test_decreasing_series_slopes_down(self):
        series = make_series("down", [1000, 100, 10])
        lines = log_chart([series], height=6, width=20).splitlines()
        rows_with_a = [i for i, line in enumerate(lines) if "A" in line and "=" not in line]
        assert rows_with_a == sorted(rows_with_a)
        first_col = lines[rows_with_a[0]].index("A")
        last_col = lines[rows_with_a[-1]].index("A")
        assert first_col < last_col

    def test_value_selection(self):
        series = make_series("m", [10, 10, 10])
        chart = log_chart([series], value="network_bytes")
        assert "network_bytes vs workers" in chart

    def test_unknown_value_rejected(self):
        series = make_series("m", [10])
        with pytest.raises(ValueError, match="unknown value"):
            log_chart([series], value="latency")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            log_chart([ScalingSeries(label="x", points=[])])

    def test_size_validated(self):
        series = make_series("m", [10])
        with pytest.raises(ValueError, match="small"):
            log_chart([series], height=1)

    def test_chart_figure_panels(self):
        series = make_series("m", [10, 20])
        panels = chart_figure([series])
        assert panels.count("vs workers") == 2


class TestConstraintGroupingErrors:
    def test_two_constraints_same_group(self):
        with pytest.raises(ValueError, match="multiple constraints"):
            _constraints_by_group(
                [(0, 1), (2, 3)],
                [LinearConstraint(0, 1), LinearConstraint(1, 0)],
            )

    def test_constraint_across_groups(self):
        with pytest.raises(ValueError, match="not aligned|does not fit"):
            _constraints_by_group([(0, 1), (2, 3)], [LinearConstraint(1, 2)])

    def test_bushy_constraint_outside_groups(self):
        with pytest.raises(ValueError):
            admissible_join_results(
                6, (BushyConstraint(x=1, y=2, z=3),), PlanSpace.BUSHY
            )


class TestSmaSingleTable:
    def test_single_table_no_rounds(self):
        from repro.algorithms.sma import optimize_sma
        from tests.conftest import make_manual_query

        report = optimize_sma(make_manual_query([7]), 4)
        assert report.rounds == []
        assert report.best.rows == 7.0
