"""Three-objective optimization (the "many-objective" setting of T&K 2014).

The paper's Section 5.4 analysis covers any number of cost metrics: memory
and traffic grow linearly in plans-per-set, time cubically.  The metric set
here (time, buffer, C_out) exercises a genuine tri-objective configuration.
"""

from __future__ import annotations

import pytest

from repro.algorithms.moq import approximation_ratio
from repro.config import Objective, OptimizerSettings, PlanSpace
from repro.core.exhaustive import all_leftdeep_cost_vectors
from repro.core.master import optimize_parallel
from repro.core.serial import optimize_serial
from repro.cost.pareto import dominates, pareto_filter
from repro.query.generator import SteinbrunnGenerator

TRI = (Objective.EXECUTION_TIME, Objective.BUFFER_SPACE, Objective.OUTPUT_ROWS)


def tri_settings(alpha=1.0):
    return OptimizerSettings(objectives=TRI, alpha=alpha)


class TestTriObjective:
    def test_cost_vectors_have_three_components(self):
        query = SteinbrunnGenerator(1).query(5)
        result = optimize_serial(query, tri_settings())
        assert all(len(plan.cost) == 3 for plan in result.plans)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_frontier_matches_exhaustive(self, seed):
        query = SteinbrunnGenerator(seed).query(5)
        settings = tri_settings()
        reference = set(pareto_filter(all_leftdeep_cost_vectors(query, settings)))
        produced = {plan.cost for plan in optimize_serial(query, settings).plans}
        assert produced == reference

    def test_frontier_is_antichain(self):
        query = SteinbrunnGenerator(4).query(6)
        result = optimize_serial(query, tri_settings())
        for a in result.plans:
            for b in result.plans:
                if a is not b:
                    assert not dominates(a.cost, b.cost)

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_parallel_frontier_equals_serial(self, workers):
        query = SteinbrunnGenerator(5).query(6)
        settings = tri_settings()
        serial_costs = {plan.cost for plan in optimize_serial(query, settings).plans}
        parallel = optimize_parallel(query, workers, settings)
        assert {plan.cost for plan in parallel.plans} == serial_costs

    @pytest.mark.parametrize("alpha", [2.0, 10.0])
    def test_alpha_guarantee_three_metrics(self, alpha):
        query = SteinbrunnGenerator(6).query(6)
        exact = optimize_serial(query, tri_settings())
        approx = optimize_serial(query, tri_settings(alpha=alpha))
        ratio = approximation_ratio(approx.plans, exact.plans)
        assert ratio <= alpha * (1 + 1e-9)

    def test_tri_frontier_at_least_pairwise(self):
        """Adding a metric can only grow (never shrink) the frontier size."""
        query = SteinbrunnGenerator(7).query(6)
        two = optimize_serial(
            query,
            OptimizerSettings(
                objectives=(Objective.EXECUTION_TIME, Objective.BUFFER_SPACE)
            ),
        )
        three = optimize_serial(query, tri_settings())
        assert len(three.plans) >= len(two.plans)

    def test_bushy_tri_objective(self):
        query = SteinbrunnGenerator(8).query(5)
        settings = OptimizerSettings(objectives=TRI, plan_space=PlanSpace.BUSHY)
        serial = optimize_serial(query, settings)
        parallel = optimize_parallel(query, 2, settings)
        assert {p.cost for p in parallel.plans} == {p.cost for p in serial.plans}

    def test_work_grows_with_metric_count(self):
        """Section 5.4: more metrics, more plans per set, more DP work."""
        query = SteinbrunnGenerator(9).query(8)
        considered = []
        for objectives in (
            (Objective.EXECUTION_TIME,),
            (Objective.EXECUTION_TIME, Objective.BUFFER_SPACE),
            TRI,
        ):
            settings = OptimizerSettings(objectives=objectives)
            stats = optimize_serial(query, settings).stats
            considered.append(stats.plans_considered)
        assert considered[0] <= considered[1] <= considered[2]
        assert considered[2] > considered[0]
