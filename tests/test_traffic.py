"""The traffic generator/replayer: determinism, shape, replay fidelity."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.bench.traffic import (
    FEATURE_SETTINGS,
    ReplayReport,
    TenantProfile,
    TrafficProfile,
    TrafficRequest,
    generate_traffic,
    latency_percentiles,
    replay_threaded,
    settings_for,
    unique_fingerprints,
)
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.service import ShardedOptimizerGateway


class TestGeneration:
    def test_same_profile_same_schedule(self):
        profile = TrafficProfile(seed=3)
        first = generate_traffic(profile)
        second = generate_traffic(profile)
        assert len(first) == profile.n_requests
        for a, b in zip(first, second):
            assert (a.at_s, a.tenant, a.feature, a.n_workers, a.rank) == (
                b.at_s,
                b.tenant,
                b.feature,
                b.n_workers,
                b.rank,
            )
            assert a.query is not b.query  # fresh objects ...
            assert a.query.tables == b.query.tables  # ... same content

    def test_different_seeds_differ(self):
        first = generate_traffic(TrafficProfile(seed=1))
        second = generate_traffic(TrafficProfile(seed=2))
        assert [r.rank for r in first] != [r.rank for r in second]

    def test_arrivals_are_nondecreasing_and_bursty(self):
        profile = TrafficProfile(n_requests=256, seed=4)
        schedule = generate_traffic(profile)
        offsets = [request.at_s for request in schedule]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        # Bursty traffic: many tiny intra-burst gaps AND some long lulls.
        threshold = profile.inter_gap_ms / 1e3 / 2
        assert sum(gap < threshold for gap in gaps) > len(gaps) / 2
        assert sum(gap >= threshold for gap in gaps) > 5

    def test_zipf_popularity_is_skewed(self):
        schedule = generate_traffic(TrafficProfile(n_requests=512, seed=5))
        counts = Counter(request.rank for request in schedule)
        # Rank 0 dominates and beats the tail decisively.
        assert counts[0] == max(counts.values())
        tail = sum(count for rank, count in counts.items() if rank >= 6)
        assert counts[0] > tail / 2

    def test_tenant_weights_respected(self):
        profile = TrafficProfile(
            n_requests=512,
            seed=6,
            tenants=(TenantProfile("hot", 8.0), TenantProfile("cold", 1.0)),
        )
        counts = Counter(r.tenant for r in generate_traffic(profile))
        assert set(counts) == {"hot", "cold"}
        assert counts["hot"] > 4 * counts["cold"]

    def test_features_map_to_settings(self):
        schedule = generate_traffic(TrafficProfile(n_requests=64, seed=7))
        seen = {request.feature for request in schedule}
        assert seen <= set(FEATURE_SETTINGS)
        for request in schedule:
            assert request.settings == settings_for(request.feature)
        assert settings_for("plain") == OptimizerSettings()
        assert settings_for("orders").consider_orders
        assert settings_for("parametric").parametric
        with pytest.raises(ValueError):
            settings_for("quantum")

    def test_validates_profile(self):
        with pytest.raises(ValueError):
            generate_traffic(TrafficProfile(n_requests=0))
        with pytest.raises(ValueError):
            generate_traffic(TrafficProfile(n_unique=0))
        with pytest.raises(ValueError):
            generate_traffic(
                TrafficProfile(features=(("quantum", 1.0),))
            )

    def test_unique_fingerprints_fold_equivalent_parallelism(self):
        # Worker counts that clamp to the same partition count share keys,
        # so unique_fingerprints <= naive (query, feature, workers) counting.
        schedule = generate_traffic(TrafficProfile(n_requests=128, seed=8))
        naive = {
            (id(request.query), request.feature, request.n_workers)
            for request in schedule
        }
        assert len(unique_fingerprints(schedule)) <= len(naive)


class TestReplay:
    def test_threaded_replay_matches_serial_and_counts_once(self):
        profile = TrafficProfile(n_requests=48, n_unique=6, tables=(4, 5), seed=9)
        schedule = generate_traffic(profile)
        with ShardedOptimizerGateway(n_shards=2, n_workers=4) as gateway:
            report = replay_threaded(gateway, schedule, n_clients=4)
            stats = gateway.stats()
        assert stats.optimizations == len(unique_fingerprints(schedule))
        assert len(report.results) == len(schedule)
        assert len(report.latencies_ms) == len(schedule)
        assert report.wall_s > 0
        assert report.throughput_qps > 0
        for request, result in zip(schedule, report.results):
            reference = best_plan(
                optimize_serial(request.query, request.settings)
            )
            assert result.best.cost == reference.cost

    def test_paced_replay_takes_at_least_the_schedule_span(self):
        profile = TrafficProfile(
            n_requests=8,
            n_unique=2,
            tables=(4, 4),
            seed=10,
            intra_gap_ms=5.0,
            inter_gap_ms=20.0,
        )
        schedule = generate_traffic(profile)
        with ShardedOptimizerGateway(n_shards=1, n_workers=2) as gateway:
            report = replay_threaded(gateway, schedule, n_clients=2, paced=True)
        # The last arrival in any client's slice lower-bounds paced wall time.
        latest = max(schedule[index].at_s for index in range(len(schedule)))
        assert report.wall_s >= min(latest, schedule[-2].at_s) * 0.5

    def test_percentiles_are_monotone(self):
        report = ReplayReport(
            results=[], latencies_ms=[5.0, 1.0, 9.0, 3.0, 7.0], wall_s=1.0
        )
        percentiles = report.latency_percentiles((50, 90, 99))
        assert percentiles["p50"] <= percentiles["p90"] <= percentiles["p99"]
        empty = ReplayReport(results=[], latencies_ms=[], wall_s=0.0)
        assert empty.latency_percentiles() == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        assert empty.throughput_qps == 0.0

    def test_percentiles_use_nearest_rank(self):
        # Nearest-rank: rank ceil(p/100 * N), 1-based.  p50 of four values
        # is the 2nd, not the 3rd (the off-by-one the naive int() index has).
        assert latency_percentiles([1.0, 2.0, 3.0, 4.0], (50,)) == {"p50": 2.0}
        assert latency_percentiles([1.0, 2.0, 3.0, 4.0], (25, 75, 100)) == {
            "p25": 1.0,
            "p75": 3.0,
            "p100": 4.0,
        }
        assert latency_percentiles([7.0], (50, 99)) == {"p50": 7.0, "p99": 7.0}

    def test_requests_know_their_rank(self):
        schedule = generate_traffic(TrafficProfile(n_requests=32, seed=11))
        assert all(
            isinstance(request, TrafficRequest) and 0 <= request.rank < 12
            for request in schedule
        )
