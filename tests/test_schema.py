"""Schema objects: columns, tables, catalog."""

from __future__ import annotations

import pytest

from repro.query.schema import Catalog, Column, Table


class TestColumn:
    def test_basic(self):
        column = Column("id", 500)
        assert column.name == "id"
        assert column.domain_size == 500

    def test_rejects_zero_domain(self):
        with pytest.raises(ValueError):
            Column("id", 0)

    def test_rejects_negative_domain(self):
        with pytest.raises(ValueError):
            Column("id", -3)

    def test_frozen(self):
        column = Column("id", 10)
        with pytest.raises(AttributeError):
            column.domain_size = 20


class TestTable:
    def test_basic(self):
        table = Table("R", 1000, (Column("a", 10),))
        assert table.cardinality == 1000
        assert table.row_bytes == 64

    def test_rejects_negative_cardinality(self):
        with pytest.raises(ValueError):
            Table("R", -1)

    def test_rejects_nonpositive_row_bytes(self):
        with pytest.raises(ValueError):
            Table("R", 10, row_bytes=0)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Table("R", 10, (Column("a", 5), Column("a", 6)))

    def test_column_lookup(self):
        table = Table("R", 10, (Column("a", 5), Column("b", 6)))
        assert table.column("b").domain_size == 6

    def test_column_lookup_missing(self):
        table = Table("R", 10, (Column("a", 5),))
        with pytest.raises(KeyError):
            table.column("z")

    def test_has_column(self):
        table = Table("R", 10, (Column("a", 5),))
        assert table.has_column("a")
        assert not table.has_column("b")

    def test_zero_cardinality_allowed(self):
        assert Table("Empty", 0).cardinality == 0


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog()
        table = Table("R", 10)
        catalog.add(table)
        assert catalog.get("R") is table

    def test_add_returns_table(self):
        catalog = Catalog()
        table = Table("R", 10)
        assert catalog.add(table) is table

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(Table("R", 10))
        with pytest.raises(ValueError):
            catalog.add(Table("R", 20))

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            Catalog().get("nope")

    def test_contains(self):
        catalog = Catalog()
        catalog.add(Table("R", 10))
        assert "R" in catalog
        assert "S" not in catalog

    def test_len(self):
        catalog = Catalog()
        assert len(catalog) == 0
        catalog.add(Table("R", 10))
        catalog.add(Table("S", 10))
        assert len(catalog) == 2
