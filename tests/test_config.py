"""Optimizer settings and configuration validation."""

from __future__ import annotations

import pickle

import pytest

from repro.config import (
    DEFAULT_SETTINGS,
    MULTI_OBJECTIVE,
    SINGLE_OBJECTIVE,
    Objective,
    OptimizerSettings,
    PlanSpace,
)


class TestPlanSpace:
    def test_group_sizes(self):
        assert PlanSpace.LINEAR.group_size == 2
        assert PlanSpace.BUSHY.group_size == 3


class TestSettingsValidation:
    def test_default_is_single_objective_linear(self):
        assert DEFAULT_SETTINGS.plan_space is PlanSpace.LINEAR
        assert DEFAULT_SETTINGS.objectives == SINGLE_OBJECTIVE
        assert not DEFAULT_SETTINGS.is_multi_objective

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            OptimizerSettings(objectives=())

    def test_rejects_duplicate_objectives(self):
        with pytest.raises(ValueError):
            OptimizerSettings(
                objectives=(Objective.EXECUTION_TIME, Objective.EXECUTION_TIME)
            )

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            OptimizerSettings(alpha=0.99)

    def test_multi_objective_flag(self):
        assert OptimizerSettings(objectives=MULTI_OBJECTIVE).is_multi_objective


class TestReplace:
    def test_replace_plan_space(self):
        changed = DEFAULT_SETTINGS.replace(plan_space=PlanSpace.BUSHY)
        assert changed.plan_space is PlanSpace.BUSHY
        assert DEFAULT_SETTINGS.plan_space is PlanSpace.LINEAR

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_SETTINGS.replace(alpha=0.1)


class TestPickling:
    def test_settings_roundtrip(self):
        settings = OptimizerSettings(
            plan_space=PlanSpace.BUSHY,
            objectives=MULTI_OBJECTIVE,
            alpha=2.5,
            consider_orders=True,
        )
        clone = pickle.loads(pickle.dumps(settings))
        assert clone == settings
