"""Report-log parsing round trip."""

from __future__ import annotations

import pytest

from repro.bench.harness import ScalingPoint, ScalingSeries
from repro.bench.logparse import (
    doubling_factors,
    extract_blocks,
    network_ratio_summary,
    parse_series,
    summarize_factors,
)

SAMPLE = """\
== Figure 2: MPQ scaling (single objective, larger search spaces)
scale=ci; medians over 2 queries
-- MPQ linear 10
 workers      time_ms    w_time_ms   memory_rel      network_B
       1        15.92        13.80         1023           1608
       2        13.03        10.86          768           3216
       4        10.00         7.60          577           6432
[fig2 completed in 20.0s wall-clock]

== Figure 1: MPQ vs SMA
-- MPQ linear 8
 workers      time_ms    w_time_ms   memory_rel      network_B
       1         3.00         1.00          255           1000
       4         2.00         0.50          144           4000
-- SMA linear 8
 workers      time_ms    w_time_ms   memory_rel      network_B
       1         9.00         9.00          255          12000
       4        12.00        12.00          255          48000
[fig1 completed in 4.2s wall-clock]
"""


class TestExtractBlocks:
    def test_two_blocks(self):
        blocks = extract_blocks(SAMPLE)
        assert set(blocks) == {"Figure 2", "Figure 1"}

    def test_block_contents(self):
        blocks = extract_blocks(SAMPLE)
        assert "MPQ linear 10" in blocks["Figure 2"]
        assert "completed" not in blocks["Figure 2"]

    def test_empty_text(self):
        assert extract_blocks("") == {}

    def test_unterminated_block_kept(self):
        blocks = extract_blocks("== Figure 9: partial\n-- x\n")
        assert "Figure 9" in blocks


class TestParseSeries:
    def test_roundtrip_series(self):
        blocks = extract_blocks(SAMPLE)
        series = parse_series(blocks["Figure 2"])
        assert len(series) == 1
        assert series[0].label == "MPQ linear 10"
        assert [p.workers for p in series[0].points] == [1, 2, 4]
        assert series[0].points[0].memory_relations == 1023

    def test_format_then_parse_identity(self):
        original = ScalingSeries(
            label="roundtrip",
            points=[
                ScalingPoint(1, 10.5, 9.25, 100, 2048),
                ScalingPoint(2, 8.12, 7.0, 75, 4096),
            ],
        )
        parsed = parse_series(original.format())
        assert len(parsed) == 1
        clone = parsed[0]
        assert clone.label == original.label
        for a, b in zip(original.points, clone.points):
            assert a.workers == b.workers
            assert a.time_ms == pytest.approx(b.time_ms, abs=0.01)
            assert a.network_bytes == b.network_bytes

    def test_multiple_series(self):
        blocks = extract_blocks(SAMPLE)
        series = parse_series(blocks["Figure 1"])
        assert [s.label for s in series] == ["MPQ linear 8", "SMA linear 8"]


class TestSummaries:
    def test_doubling_factors(self):
        blocks = extract_blocks(SAMPLE)
        (series,) = parse_series(blocks["Figure 2"])
        factors = doubling_factors(series, "memory_relations")
        assert factors == [pytest.approx(768 / 1023), pytest.approx(577 / 768)]

    def test_summarize_factors_mentions_series(self):
        blocks = extract_blocks(SAMPLE)
        series = parse_series(blocks["Figure 2"])
        text = summarize_factors(series, "worker_time_ms")
        assert "MPQ linear 10" in text
        assert "per worker doubling" in text

    def test_network_ratio(self):
        blocks = extract_blocks(SAMPLE)
        series = parse_series(blocks["Figure 1"])
        text = network_ratio_summary(series)
        assert "x12.0" in text  # 48000 / 4000 at 4 workers
