"""Regenerate every committed BENCH_*.json with one command.

The benchmark reports in the repository root are produced by six dual-use
scripts under ``benchmarks/``; each is a regression gate in CI with its own
flags.  This runner invokes them exactly as CI does (same flags, same
output files) so the committed reports never drift from the workflow:

    python tools/regen_benches.py             # all six, in order
    python tools/regen_benches.py --only persist,async
    python tools/regen_benches.py --list
    python tools/regen_benches.py --check     # dry run: nothing executes

Each script still enforces its own gates (speedup floors, divergence
checks, restart/latency gates); the runner stops at the first failure
unless ``--keep-going`` is given, and exits non-zero if anything failed.

``--check`` is the dry-run mode for CI and pre-commit hooks: without
running a single benchmark it verifies that every configured script
exists, that every committed report (``BENCH_persist.json`` included) is
present and parses as JSON, and that no report predates its script — the
drift that this runner exists to prevent.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: name -> (output file, argv after the script path) — mirrors ci.yml's
#: bench-regression job; change both together.
BENCHES: dict[str, tuple[str, list[str]]] = {
    "fastdp": (
        "BENCH_fastdp.json",
        [
            "benchmarks/bench_fastdp.py",
            "--features", "plain,orders,parametric,vecdp",
            "--repeats", "2",
            "--json", "BENCH_fastdp.json",
            "--min-speedup", "1.0",
            "--floor", "vecdp=5.0",
        ],
    ),
    "gateway": (
        "BENCH_gateway.json",
        [
            "benchmarks/bench_gateway.py",
            "--repeats", "2",
            "--json", "BENCH_gateway.json",
            "--min-speedup", "1.0",
        ],
    ),
    "async": (
        "BENCH_async.json",
        [
            "benchmarks/bench_async.py",
            "--repeats", "3",
            "--json", "BENCH_async.json",
            "--min-speedup", "1.0",
        ],
    ),
    "persist": (
        "BENCH_persist.json",
        [
            "benchmarks/bench_persist.py",
            "--json", "BENCH_persist.json",
            "--max-latency-ratio", "5.0",
        ],
    ),
    "net": (
        "BENCH_net.json",
        [
            "benchmarks/bench_net.py",
            "--repeats", "2",
            "--json", "BENCH_net.json",
            "--min-speedup", "1.0",
        ],
    ),
    "fleet": (
        "BENCH_fleet.json",
        [
            "benchmarks/bench_fleet.py",
            "--json", "BENCH_fleet.json",
            "--log-dir", "fleet-logs",
        ],
    ),
}


def run_bench(name: str) -> int:
    """Run one benchmark script from the repo root; returns its exit code."""
    output, argv = BENCHES[name]
    print(f"=== {name}: {' '.join(argv)} -> {output}", flush=True)
    environment = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    process = subprocess.run(
        [sys.executable, *argv], cwd=ROOT, env=environment
    )
    return process.returncode


def check_bench(name: str) -> list[str]:
    """Dry-run validation of one benchmark; returns problem descriptions."""
    import json

    output, argv = BENCHES[name]
    problems: list[str] = []
    script = ROOT / argv[0]
    if not script.is_file():
        problems.append(f"{name}: script {argv[0]} is missing")
    report = ROOT / output
    if not report.is_file():
        problems.append(f"{name}: committed report {output} is missing")
        return problems
    try:
        parsed = json.loads(report.read_text())
    except (OSError, ValueError) as error:
        problems.append(f"{name}: {output} is not valid JSON ({error})")
        return problems
    # Schemas differ per script (bench_fastdp keys by feature, the rest
    # carry a 'config' block), so the shared contract is just "a non-empty
    # JSON object" — anything tighter belongs to the script's own gates.
    if not isinstance(parsed, dict) or not parsed:
        problems.append(f"{name}: {output} is not a non-empty JSON object")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of: {','.join(BENCHES)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="run every benchmark even after a failure",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="dry run: verify scripts and committed reports without "
        "executing any benchmark",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, (output, bench_argv) in BENCHES.items():
            print(f"{name:8} -> {output}  ({bench_argv[0]})")
        return 0
    names = list(BENCHES)
    if args.only:
        names = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in names if name not in BENCHES]
        if unknown:
            parser.error(
                f"unknown benchmark(s) {unknown}; choose from {list(BENCHES)}"
            )
    if args.check:
        problems = [issue for name in names for issue in check_bench(name)]
        for issue in problems:
            print(f"CHECK FAIL: {issue}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"check ok: {len(names)} benchmark(s), scripts present, "
            "reports parse"
        )
        return 0
    failures: list[str] = []
    for name in names:
        code = run_bench(name)
        if code != 0:
            failures.append(name)
            if not args.keep_going:
                break
    if failures:
        print(f"FAIL: {failures}", file=sys.stderr)
        return 1
    print(f"regenerated: {', '.join(BENCHES[name][0] for name in names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
