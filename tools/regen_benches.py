"""Regenerate every committed BENCH_*.json with one command.

The benchmark reports in the repository root are produced by five dual-use
scripts under ``benchmarks/``; each is a regression gate in CI with its own
flags.  This runner invokes them exactly as CI does (same flags, same
output files) so the committed reports never drift from the workflow:

    python tools/regen_benches.py             # all five, in order
    python tools/regen_benches.py --only persist,async
    python tools/regen_benches.py --list

Each script still enforces its own gates (speedup floors, divergence
checks, restart/latency gates); the runner stops at the first failure
unless ``--keep-going`` is given, and exits non-zero if anything failed.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: name -> (output file, argv after the script path) — mirrors ci.yml's
#: bench-regression job; change both together.
BENCHES: dict[str, tuple[str, list[str]]] = {
    "fastdp": (
        "BENCH_fastdp.json",
        [
            "benchmarks/bench_fastdp.py",
            "--features", "plain,orders,parametric,vecdp",
            "--repeats", "2",
            "--json", "BENCH_fastdp.json",
            "--min-speedup", "1.0",
            "--floor", "vecdp=5.0",
        ],
    ),
    "gateway": (
        "BENCH_gateway.json",
        [
            "benchmarks/bench_gateway.py",
            "--repeats", "2",
            "--json", "BENCH_gateway.json",
            "--min-speedup", "1.0",
        ],
    ),
    "async": (
        "BENCH_async.json",
        [
            "benchmarks/bench_async.py",
            "--repeats", "3",
            "--json", "BENCH_async.json",
            "--min-speedup", "1.0",
        ],
    ),
    "persist": (
        "BENCH_persist.json",
        [
            "benchmarks/bench_persist.py",
            "--json", "BENCH_persist.json",
            "--max-latency-ratio", "5.0",
        ],
    ),
    "net": (
        "BENCH_net.json",
        [
            "benchmarks/bench_net.py",
            "--repeats", "2",
            "--json", "BENCH_net.json",
            "--min-speedup", "1.0",
        ],
    ),
}


def run_bench(name: str) -> int:
    """Run one benchmark script from the repo root; returns its exit code."""
    output, argv = BENCHES[name]
    print(f"=== {name}: {' '.join(argv)} -> {output}", flush=True)
    environment = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    process = subprocess.run(
        [sys.executable, *argv], cwd=ROOT, env=environment
    )
    return process.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of: {','.join(BENCHES)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="run every benchmark even after a failure",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, (output, bench_argv) in BENCHES.items():
            print(f"{name:8} -> {output}  ({bench_argv[0]})")
        return 0
    names = list(BENCHES)
    if args.only:
        names = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in names if name not in BENCHES]
        if unknown:
            parser.error(
                f"unknown benchmark(s) {unknown}; choose from {list(BENCHES)}"
            )
    failures: list[str] = []
    for name in names:
        code = run_bench(name)
        if code != 0:
            failures.append(name)
            if not args.keep_going:
                break
    if failures:
        print(f"FAIL: {failures}", file=sys.stderr)
        return 1
    print(f"regenerated: {', '.join(BENCHES[name][0] for name in names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
