"""Assemble EXPERIMENTS.md from recorded default-scale experiment logs.

Usage (from the repository root)::

    python -m repro.bench all --scale default | tee experiments.log
    python tools/assemble_experiments.py experiments_fig123.log \
        experiments_moq.log experiments_moq2.log

The script extracts each experiment's report block, parses the scaling
series to compute the quantities the paper's claims are stated in (factors
per worker doubling, network ratios, speedups), renders ASCII log-log
charts, and writes EXPERIMENTS.md with a paper-vs-measured verdict per
table/figure.
"""


from __future__ import annotations

import statistics
import sys
from pathlib import Path

# The tool is run as a standalone script (``python tools/assemble_experiments.py``),
# so the repository's ``src/`` layout is not on ``sys.path`` automatically.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.logparse import (
    extract_blocks,
    network_ratio_summary,
    parse_series,
    summarize_factors,
)
from repro.bench.reporting import log_chart


def main(argv: list[str]) -> int:
    output = Path("EXPERIMENTS.md")
    paths = []
    arguments = iter(argv)
    for argument in arguments:
        if argument in ("-o", "--output"):
            output = Path(next(arguments))
        else:
            paths.append(argument)
    blocks: dict[str, str] = {}
    for path in paths:
        blocks.update(extract_blocks(Path(path).read_text()))
    missing = [
        key
        for key in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
                    "Table 1")
        if key not in blocks
    ]
    if missing:
        print(f"warning: missing experiment blocks: {missing}", file=sys.stderr)

    out: list[str] = []
    out.append(HEADER)

    def add(figure: str, paper_claim: str, measured_note_fn=None, charts=(),
            note: str | None = None):
        block = blocks.get(figure)
        out.append(f"## {figure}")
        out.append("")
        out.append(f"**Paper:** {paper_claim}")
        out.append("")
        if note:
            out.append(note)
            out.append("")
        if block is None:
            out.append("*(block missing from logs)*")
            out.append("")
            return
        series_list = parse_series(block)
        if measured_note_fn is not None:
            note = measured_note_fn(series_list)
            if note:
                out.append("**Measured (default scale):**")
                out.append("")
                out.append("```")
                out.append(note)
                out.append("```")
                out.append("")
        out.append("<details><summary>Full series</summary>")
        out.append("")
        out.append("```")
        out.append(block)
        out.append("```")
        out.append("")
        out.append("</details>")
        out.append("")
        for chart_value in charts:
            try:
                out.append("```")
                out.append(log_chart(series_list, chart_value))
                out.append("```")
                out.append("")
            except ValueError:
                pass

    add(
        "Figure 1",
        "MPQ outperforms SMA by up to four orders of magnitude in "
        "optimization time; SMA's traffic reaches hundreds of megabytes "
        "while MPQ sends at most 234 kB; MPQ's scalability is limited by "
        "the small query sizes (overheads dominate).",
        lambda sl: network_ratio_summary(sl),
        charts=("time_ms",),
    )
    add(
        "Figure 2",
        "MPQ scales steadily for sufficiently large search spaces; worker "
        "time shrinks by 3/4 (linear) and 21/27 (bushy) per worker "
        "doubling, memory by 3/4 and 7/8; network grows linearly in m and "
        "only marginally in query size.",
        lambda sl: (
            "worker time per doubling:\n"
            + summarize_factors(sl, "worker_time_ms")
            + "\nmemory (relations) per doubling:\n"
            + summarize_factors(sl, "memory_relations")
        ),
        charts=("worker_time_ms", "memory_relations"),
    )
    add(
        "Figure 3",
        "Query properties like the join graph structure have negligible "
        "impact on optimization time (the DP examines the same table sets "
        "regardless of topology, since cross products are allowed).",
        None,
    )
    add(
        "Figure 4",
        "Multi-objective (two metrics, alpha=10): MPQ beats SMA on time and "
        "traffic; MPQ's traffic is higher than in the single-objective case "
        "because each worker returns its partition's Pareto-optimal set; "
        "SMA stops benefiting from parallelism beyond eight workers.",
        lambda sl: network_ratio_summary(sl),
        charts=("time_ms",),
    )
    add(
        "Figure 5",
        "Multi-objective MPQ scales steadily up to 256 workers without "
        "diminishing returns for linear plan spaces.",
        lambda sl: (
            "worker time per doubling:\n" + summarize_factors(sl, "worker_time_ms")
        ),
        charts=("worker_time_ms",),
    )
    add(
        "Table 1",
        "Higher degrees of parallelism reach better precision alpha within "
        "a fixed optimization-time budget; small queries need one worker, "
        "large ones are infeasible (inf) even at maximal parallelism; "
        "required workers grow as alpha shrinks and budgets tighten.",
        None,
        note=(
            "*Recorded at `--scale ci`: the default-scale sweep with global "
            "α→1.01 keeps near-exact frontiers at 12 tables and exceeds a "
            "single-machine time box.  The structure — 1s, powers of two, "
            "inf, and the α-dependence in the last row — is the paper's.*"
        ),
    )
    add(
        "Speedups vs serial DP (paper Section 6.2 text)",
        "At maximal parallelism: linear 7.2x (20 tables, 128 workers) and "
        "8.1x (24 tables); bushy 3.2x (15 tables, 32 workers) and 4.8x "
        "(18 tables, 64 workers); multi-objective 5.1x/5.5x/9.4x for "
        "16/18/20 tables.",
        None,
    )

    out.append(FOOTER)
    output.write_text("\n".join(out) + "\n")
    print(f"wrote {output}")
    return 0


HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Section 6), regenerated by
`python -m repro.bench <experiment> --scale default` on this repository's
simulated shared-nothing cluster.  Query sizes are scaled down relative to
the paper (pure-Python DP is ~100x slower per operation than the authors'
Java; see DESIGN.md §1) and cluster overheads are scaled to match the
paper's compute-to-overhead regime (docs/cluster_model.md).  Absolute times
are therefore not comparable; the **shapes** — who wins, scaling factors per
worker doubling, crossover positions — are, and each section below states
the paper's claim next to the measured series.

Analytic paper-scale predictions (exact closed-form counts at the paper's
original query sizes, e.g. linear 24 tables / 128 workers) are covered by
`benchmarks/bench_paper_scale.py`, which asserts the paper's headline
magnitudes (e.g. speedup 8.1x at 128 workers falls in our predicted 6-10x).

Charts are ASCII log-log renderings of the measured series (letters =
series, see legends).

## Scoreboard (paper claim → measured)

| Claim | Paper | Measured here | Verdict |
|---|---|---|---|
| memory shrink per worker doubling, linear | 3/4 | x0.750–0.751 | exact |
| memory shrink per doubling, bushy | 7/8 | x0.875 | exact |
| worker-time shrink per doubling, linear | ≤ 3/4 | x0.686–0.711 | holds (better: 2nd mechanism) |
| worker-time shrink per doubling, bushy | 21/27 ≈ 0.778 | x0.773–0.776 | exact |
| MPQ network linear in workers, tiny per worker | yes | yes (2 msgs/worker) | holds |
| SMA traffic explodes with workers & size | 100s of MB vs ≤234 kB | x41–x144 at 64 workers, growing with n | holds (scaled) |
| SMA beneficial only to ~4–8 workers | yes | time minimum at 2–4 workers | holds |
| topology does not affect DP time | negligible | <2x spread, identical split counts | holds |
| MOQ scales steadily, no diminishing returns | up to 256 workers | steady x0.69–0.71/doubling to 128 | holds |
| speedups grow with query size | 7.2–9.4x at paper sizes | 4.75x (14t single), 7.0x (14t multi); analytic 6–10x at 24t | holds (scaled) |
| more parallelism → tighter α in budget | Table 1 | last row: α=1.01 needs 8 workers, α≥1.05 needs 4 | holds |
"""

FOOTER = """\
## Reproduction notes

* Single-objective experiments (Figures 1-3) and multi-objective ones
  (Figures 4-5, Table 1) use the identical worker DP; only the pruning
  function differs — as in the paper.
* The `paper` scale (`--scale paper`) runs the paper's original sizes and
  worker counts; expect hours on a single machine.
* Seeds are fixed; every number in this file is reproducible with the
  commands above, followed by `python tools/assemble_experiments.py <logs>`.
"""


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
